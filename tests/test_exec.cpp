// Tests for the fxexec backend seam: threaded messaging and park/wake,
// subset barriers under nested TASK_PARTITIONs (sibling subgroups must not
// synchronize), counter parity with the simulator, abort propagation,
// deadlock detection, and concurrent trace recording.
//
// The simulator's ucontext fibers are incompatible with ThreadSanitizer,
// so sim-side tests self-skip under TSan; the threaded-backend tests are
// exactly the ones a TSan build is for.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/fx.hpp"
#include "core/parallel_loop.hpp"
#include "dist/redistribute.hpp"
#include "exec/threaded_backend.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "machine/report.hpp"
#include "pgroup/group.hpp"
#include "runtime/simulator.hpp"
#include "trace/critical_path.hpp"
#include "trace/phase_report.hpp"

#if defined(__SANITIZE_THREAD__)
#define FXPAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FXPAR_TSAN 1
#endif
#endif

#ifdef FXPAR_TSAN
#define FXPAR_SKIP_SIM_UNDER_TSAN() \
  GTEST_SKIP() << "simulator fibers (ucontext) are incompatible with ThreadSanitizer"
#else
#define FXPAR_SKIP_SIM_UNDER_TSAN() (void)0
#endif

namespace mx = fxpar::machine;
namespace ex = fxpar::exec;
namespace core = fxpar::core;
using fxpar::MachineConfig;
using fxpar::SubgroupSpec;

namespace {

MachineConfig threaded(int p) {
  auto c = MachineConfig::paragon(p);
  c.backend = ex::BackendKind::Threads;
  return c;
}

MachineConfig simulated(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

mx::Payload stamp(int rank, int round, std::size_t bytes) {
  mx::Payload p(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    p[i] = static_cast<std::byte>((rank * 31 + round * 7 + static_cast<int>(i)) & 0xff);
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Threaded messaging
// ---------------------------------------------------------------------------

TEST(ExecThreads, RingMessagingDeliversStampedPayloads) {
  const int P = 4, rounds = 50;
  mx::Machine m(threaded(P));
  std::atomic<int> checked{0};
  m.run([&](mx::Context& ctx) {
    const int r = ctx.phys_rank();
    for (int k = 0; k < rounds; ++k) {
      ctx.send_phys((r + 1) % P, 7, stamp(r, k, 16 + static_cast<std::size_t>(k)));
      const mx::Payload got = ctx.recv_phys((r + P - 1) % P, 7);
      const mx::Payload want = stamp((r + P - 1) % P, k, 16 + static_cast<std::size_t>(k));
      ASSERT_EQ(got.size(), want.size());
      ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
          << "rank " << r << " round " << k;
      checked.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(checked.load(), P * rounds);
}

TEST(ExecThreads, ManyToOnePreservesPerSenderFifo) {
  const int P = 4, per_sender = 100;
  mx::Machine m(threaded(P));
  m.run([&](mx::Context& ctx) {
    const int r = ctx.phys_rank();
    if (r == 0) {
      // Drain senders in an order chosen by the receiver; each (src, tag)
      // stream must arrive in the sender's send order.
      for (int k = 0; k < per_sender; ++k) {
        for (int s = 1; s < P; ++s) {
          const mx::Payload got = ctx.recv_phys(s, static_cast<std::uint64_t>(s));
          const mx::Payload want = stamp(s, k, 8);
          ASSERT_EQ(got.size(), want.size());
          ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
              << "sender " << s << " message " << k;
        }
      }
    } else {
      for (int k = 0; k < per_sender; ++k) {
        ctx.send_phys(0, static_cast<std::uint64_t>(r), stamp(r, k, 8));
      }
    }
  });
}

TEST(ExecThreads, RunResultReportsRealTime) {
  mx::Machine m(threaded(2));
  const auto res = m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 1, mx::Payload(64));
    } else {
      ctx.recv_phys(0, 1);
    }
    ctx.barrier();
  });
  EXPECT_EQ(res.backend, "threads");
  EXPECT_GT(res.host_ms, 0.0);
  EXPECT_GT(res.finish_time, 0.0);  // real seconds, not modeled
  EXPECT_EQ(res.messages, 1u);
  EXPECT_EQ(res.bytes, 64u);
  EXPECT_EQ(res.barriers, 2u);  // per-member arrivals, as in the simulator
  // The report surfaces the real-time line only for non-sim backends.
  const std::string report = mx::utilization_report(res);
  EXPECT_NE(report.find("backend threads"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Subset barriers under nested TASK_PARTITIONs (both backends)
// ---------------------------------------------------------------------------

namespace {

// Sibling subgroups of a TASK_PARTITION must synchronize independently:
// "left" runs many barriers while "right" only exchanges messages. With a
// global (non-subset) barrier this would deadlock, because right's members
// never arrive at left's barriers. Nested partitions inside "left" check
// that grand-child groups are again independent.
void run_sibling_barrier_program(const MachineConfig& cfg, std::uint64_t* barriers_out) {
  mx::Machine m(cfg);
  std::atomic<int> left_done{0}, right_done{0};
  const auto res = m.run([&](mx::Context& ctx) {
    core::TaskPartition part(ctx, {{"left", 2}, {"right", 2}}, "split");
    core::TaskRegion region(ctx, part);
    region.on("left", [&] {
      for (int i = 0; i < 10; ++i) ctx.barrier();
      // Nested partition: each singleton synchronizes only with itself.
      core::TaskPartition inner(ctx, {{"a", 1}, {"b", 1}}, "inner");
      core::TaskRegion inner_region(ctx, inner);
      inner_region.on("a", [&] { ctx.barrier(); });
      inner_region.on("b", [&] { ctx.barrier(); });
      left_done.fetch_add(1, std::memory_order_relaxed);
    });
    region.on("right", [&] {
      const int v = ctx.group().virtual_of(ctx.phys_rank());
      if (v == 0) {
        ctx.send_phys(ctx.group().physical(1), 5, mx::Payload(4));
      } else {
        ctx.recv_phys(ctx.group().physical(0), 5);
      }
      right_done.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(left_done.load(), 2);
  EXPECT_EQ(right_done.load(), 2);
  if (barriers_out) *barriers_out = res.barriers;
}

}  // namespace

TEST(ExecBarriers, SiblingSubgroupsIndependentOnThreads) {
  std::uint64_t barriers = 0;
  run_sibling_barrier_program(threaded(4), &barriers);
  // 2 members x 10 barriers + 2 singleton barriers, plus whatever the
  // partition machinery itself adds — identical on both backends (below).
  EXPECT_GE(barriers, 22u);
}

TEST(ExecBarriers, SiblingSubgroupsIndependentOnSimulator) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  std::uint64_t barriers = 0;
  run_sibling_barrier_program(simulated(4), &barriers);
  EXPECT_GE(barriers, 22u);
}

TEST(ExecBarriers, BarrierCountMatchesAcrossBackends) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  std::uint64_t sim_barriers = 0, thr_barriers = 0;
  run_sibling_barrier_program(simulated(4), &sim_barriers);
  run_sibling_barrier_program(threaded(4), &thr_barriers);
  EXPECT_EQ(sim_barriers, thr_barriers);
}

// ---------------------------------------------------------------------------
// Counter parity with the simulator (satellite: concurrent counters)
// ---------------------------------------------------------------------------

namespace {

// A communication-heavy deterministic program: repeated redistributions
// between a row-block and a column-block layout drive messages, bytes,
// barriers and the redistribution plan cache on every processor.
mx::RunResult run_redistribution_program(const MachineConfig& cfg) {
  namespace ds = fxpar::dist;
  mx::Machine m(cfg);
  return m.run([&](mx::Context& ctx) {
    const auto& g = ctx.group();
    ds::DistArray<double> rows(
        ctx, ds::Layout(g, {16, 16}, {ds::DimDist::block(), ds::DimDist::collapsed()}),
        "rows");
    ds::DistArray<double> cols(
        ctx, ds::Layout(g, {16, 16}, {ds::DimDist::collapsed(), ds::DimDist::block()}),
        "cols");
    rows.fill([](std::span<const std::int64_t> gi) {
      return static_cast<double>(gi[0] * 100 + gi[1]);
    });
    for (int round = 0; round < 4; ++round) {
      ds::assign(ctx, cols, rows);
      ds::assign(ctx, rows, cols);
    }
    ctx.barrier();
  });
}

}  // namespace

TEST(ExecCounters, ThreadedTotalsMatchSimulator) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const auto sim_res = run_redistribution_program(simulated(4));
  const auto thr_res = run_redistribution_program(threaded(4));
  EXPECT_EQ(sim_res.messages, thr_res.messages);
  EXPECT_EQ(sim_res.bytes, thr_res.bytes);
  EXPECT_EQ(sim_res.barriers, thr_res.barriers);
  EXPECT_EQ(sim_res.plan_cache_hits, thr_res.plan_cache_hits);
  EXPECT_EQ(sim_res.plan_cache_misses, thr_res.plan_cache_misses);
  // The repeated rounds must actually hit the plan cache for this test to
  // exercise its concurrent lookup path.
  EXPECT_GT(thr_res.plan_cache_hits, 0u);
  EXPECT_GT(thr_res.plan_cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// Failure handling
// ---------------------------------------------------------------------------

TEST(ExecThreads, AbortPropagatesFirstError) {
  mx::Machine m(threaded(4));
  EXPECT_THROW(
      {
        m.run([&](mx::Context& ctx) {
          if (ctx.phys_rank() == 2) {
            throw std::runtime_error("boom on rank 2");
          }
          // Everyone else blocks on a message that never comes; the abort
          // must wake them instead of hanging the join.
          ctx.recv_phys(2, 99);
        });
      },
      std::runtime_error);
}

// Messages still queued when a run aborts must be reclaimed when the
// Machine is destroyed, not only by the next run's reset (the ASan CI job
// enforces the no-leak part).
TEST(ExecThreads, AbortWithQueuedMessagesDoesNotLeak) {
  mx::Machine m(threaded(2));
  EXPECT_THROW(
      {
        m.run([&](mx::Context& ctx) {
          if (ctx.phys_rank() == 0) {
            ctx.send_phys(1, 1, stamp(0, 0, 8));
            for (int i = 0; i < 8; ++i) {
              ctx.send_phys(1, 2, stamp(0, i + 1, 4096));  // never received
            }
            ctx.recv_phys(1, 3);  // parks until the abort wakes it
          } else {
            ctx.recv_phys(0, 1);
            throw std::runtime_error("boom after first message");
          }
        });
      },
      std::runtime_error);
}

TEST(ExecThreads, DeadlockDetected) {
  mx::Machine m(threaded(2));
  EXPECT_THROW(
      {
        m.run([&](mx::Context& ctx) {
          if (ctx.phys_rank() == 0) {
            ctx.recv_phys(1, 3);  // rank 1 finishes without sending
          }
        });
      },
      fxpar::runtime::DeadlockError);
}

// Regression for a false DeadlockError: a deposit (or barrier release)
// delivered just before the sender's own park left the counters quiet
// while the woken worker was still scheduled out, so the quiescence check
// misread a valid program as a global wait cycle. quiescent() now also
// scans undrained inboxes and unconsumed barrier releases. This hammers
// exactly that pattern — deposit, then immediately block — plus full-group
// barriers, and must complete without throwing.
TEST(ExecThreads, NoFalseDeadlockUnderParkRaces) {
  const int P = 8, rounds = 400;
  mx::Machine m(threaded(P));
  m.run([&](mx::Context& ctx) {
    const int r = ctx.phys_rank();
    for (int i = 0; i < rounds; ++i) {
      ctx.send_phys((r + 1) % P, 7, stamp(r, i, 16));
      ctx.recv_phys((r + P - 1) % P, 7);
      if (i % 16 == 0) ctx.barrier();
    }
    ctx.barrier();
  });
}

// ---------------------------------------------------------------------------
// Concurrent trace recording
// ---------------------------------------------------------------------------

TEST(ExecThreads, TraceRecordsMergeAfterConcurrentRun) {
  auto cfg = threaded(4);
  cfg.trace = true;
  mx::Machine m(cfg);
  const auto res = m.run([&](mx::Context& ctx) {
    auto span = ctx.span("work", "test");
    const int r = ctx.phys_rank();
    if (r == 0) {
      ctx.send_phys(1, 11, mx::Payload(32));
    } else if (r == 1) {
      ctx.recv_phys(0, 11);
    }
    ctx.barrier();
  });
  ASSERT_NE(res.trace, nullptr);
  // Every worker recorded its shard; the merge produced one coherent
  // timeline: the program root span + one "work" span per processor.
  int work_spans = 0;
  for (const auto& s : res.trace->spans()) {
    if (s.name == "work") ++work_spans;
  }
  EXPECT_EQ(work_spans, 4);
  ASSERT_EQ(res.trace->messages().size(), 1u);
  EXPECT_EQ(res.trace->messages()[0].src, 0);
  EXPECT_EQ(res.trace->messages()[0].dst, 1);
  ASSERT_EQ(res.trace->barriers().size(), 1u);
  EXPECT_EQ(res.trace->barriers()[0].procs.size(), 4u);
  // Concurrent spans carry real busy time (elapsed minus recorded waits),
  // not the zero a missing charge() would leave behind.
  double root_busy = 0.0;
  for (const auto& s : res.trace->spans()) {
    EXPECT_GE(s.busy, 0.0);
    EXPECT_LE(s.busy, s.duration() + 1e-9);
    if (s.depth == 0) root_busy += s.busy;
  }
  EXPECT_GT(root_busy, 0.0);
  double totals_busy = 0.0;
  for (const auto& t : res.trace->proc_totals()) totals_busy += t.busy;
  EXPECT_NEAR(totals_busy, root_busy, 1e-9);
  // The analyzers must accept the merged trace.
  EXPECT_FALSE(fxpar::trace::phase_report(*res.trace).to_string().empty());
  EXPECT_FALSE(fxpar::trace::critical_path(*res.trace).to_string().empty());
}

// ---------------------------------------------------------------------------
// Work-stealing loops (tentpole)
// ---------------------------------------------------------------------------

namespace {

// Deliberately imbalanced iteration cost: heavy iterations take `reps`
// rounds of transcendental work, light ones a single round. Deterministic —
// the same (input, reps) pair always produces the same bits.
double steal_heavy(double x, int reps) {
  double acc = x;
  for (int r = 0; r < reps * 200; ++r) {
    acc = std::fma(acc, 1.0000001, std::sin(acc) * 1e-3);
  }
  return acc;
}

constexpr std::int64_t kIrrN = 512;  // loop length
constexpr int kHeavySteps = 64;      // heavy-iteration work multiplier

struct IrregularRun {
  mx::RunResult res;
  std::vector<double> out;  ///< per-iteration results (shared, disjoint writes)
  std::vector<int> who;     ///< physical rank that executed each iteration
  double reduced = 0.0;     ///< do&merge result (identical on every member)
};

// The canonical irregular do&merge program: every heavy iteration lands in
// vrank 0's static block, so with stealing enabled the other workers drain
// chunks of its deque. `who[i]` records the worker that actually ran
// iteration i — under stealing that can differ from the static owner, but
// the *results* must not.
IrregularRun run_irregular_loop(const MachineConfig& cfg, std::int64_t n = kIrrN) {
  mx::Machine m(cfg);
  IrregularRun r;
  r.out.assign(static_cast<std::size_t>(n), 0.0);
  r.who.assign(static_cast<std::size_t>(n), -1);
  double* out = r.out.data();
  int* who = r.who.data();
  double* reduced = &r.reduced;
  r.res = m.run([&, n](mx::Context& ctx) {
    core::parallel_for(ctx, 0, n, [&ctx, out, who, n](std::int64_t i) {
      who[i] = ctx.machine().backend().current_rank();
      out[i] = steal_heavy(static_cast<double>(i) * 1e-3,
                           i < n / 4 ? kHeavySteps : 1);
    });
    // Floating-point sum whose value depends on combine order: bitwise
    // equality across schedules proves the merge order is preserved.
    const double sum = core::parallel_reduce<double>(
        ctx, 0, n, [](std::int64_t i) { return 1.0 / static_cast<double>(i + 1); },
        std::plus<double>{}, 0.0);
    if (ctx.phys_rank() == 0) *reduced = sum;
  });
  return r;
}

// Static iteration ownership on the whole-machine group (vrank == phys).
std::vector<int> static_owner(int procs, std::int64_t n = kIrrN) {
  std::vector<int> own(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < procs; ++v) {
    const auto [f, l] = ex::loop_block(0, n, procs, v);
    for (std::int64_t i = f; i < l; ++i) own[static_cast<std::size_t>(i)] = v;
  }
  return own;
}

}  // namespace

TEST(ExecStealing, IrregularLoopStealsAndStaysBitIdentical) {
  const int P = 4;
  const auto steal = run_irregular_loop(threaded(P));
  auto off = threaded(P);
  off.work_stealing = false;
  const auto nosteal = run_irregular_loop(off);

  // The stealing run moved work: some chunks of the hot block ran on idle
  // siblings, and the counters surfaced through RunResult say so.
  EXPECT_GT(steal.res.steals, 0u);
  EXPECT_GT(steal.res.stolen_iters, 0u);
  EXPECT_GE(steal.res.stolen_iters, steal.res.steals);  // >= 1 iter per chunk
  const std::string report = mx::utilization_report(steal.res);
  EXPECT_NE(report.find("work stealing"), std::string::npos);

  // Every iteration that ran off its static owner is a stolen one; the
  // executor map must account for exactly the stolen iterations.
  const auto own = static_owner(P);
  std::uint64_t moved = 0;
  for (std::size_t i = 0; i < own.size(); ++i) {
    if (steal.who[i] != own[i]) ++moved;
  }
  EXPECT_EQ(moved, steal.res.stolen_iters);

  // With the toggle off the schedule is purely static.
  EXPECT_EQ(nosteal.res.steals, 0u);
  EXPECT_EQ(nosteal.res.stolen_iters, 0u);
  for (std::size_t i = 0; i < own.size(); ++i) {
    ASSERT_EQ(nosteal.who[i], own[i]) << "iteration " << i;
  }

  // The determinism contract: array contents and the order-sensitive
  // reduction are bit-identical with stealing on or off.
  EXPECT_EQ(steal.out, nosteal.out);
  EXPECT_EQ(steal.reduced, nosteal.reduced);
}

TEST(ExecStealing, SimulatorMatchesStealingThreadsBitIdentically) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const int P = 4;
  const auto sim = run_irregular_loop(simulated(P));
  const auto thr = run_irregular_loop(threaded(P));

  // The simulator always runs the static schedule, whatever the toggle.
  EXPECT_EQ(sim.res.steals, 0u);
  EXPECT_EQ(sim.res.stolen_iters, 0u);
  const auto own = static_owner(P);
  for (std::size_t i = 0; i < own.size(); ++i) {
    ASSERT_EQ(sim.who[i], own[i]) << "iteration " << i;
  }

  EXPECT_EQ(sim.out, thr.out);
  EXPECT_EQ(sim.reduced, thr.reduced);
}

// Block lengths that are not a multiple of the chunk count: splitting a
// 25-iteration block into chunks of rounded-up size 2 overshoots the
// block, and an unclamped chunk lower bound used to produce lo > hi
// chunks whose negative lengths wedged the join spin forever (a hang the
// deadlock detector cannot see: the spinning worker never parks). With 4
// procs, a 100-iteration loop gives every member exactly such a block.
TEST(ExecStealing, UnevenBlockLengthTerminatesAndStaysBitIdentical) {
  const int P = 4;
  constexpr std::int64_t kOdd = 100;  // 25 iterations per static block
  const auto steal = run_irregular_loop(threaded(P), kOdd);
  auto off = threaded(P);
  off.work_stealing = false;
  const auto nosteal = run_irregular_loop(off, kOdd);

  // Every iteration ran exactly once, the executor map accounts for
  // exactly the stolen iterations, and results match the static schedule
  // bit for bit.
  const auto own = static_owner(P, kOdd);
  std::uint64_t moved = 0;
  for (std::size_t i = 0; i < own.size(); ++i) {
    ASSERT_NE(steal.who[i], -1) << "iteration " << i << " never ran";
    if (steal.who[i] != own[i]) ++moved;
  }
  EXPECT_EQ(moved, steal.res.stolen_iters);
  EXPECT_EQ(nosteal.res.steals, 0u);
  EXPECT_EQ(steal.out, nosteal.out);
  EXPECT_EQ(steal.reduced, nosteal.reduced);
}

// A loop body that throws while siblings may hold stolen chunks: the
// failing member must poison its unclaimed chunks and wait out in-flight
// thieves (which execute through its frame's body object) before
// unwinding, and the run must rethrow the original error — not hang, not
// touch freed state, not surface a bare AbortError.
TEST(ExecStealing, ThrowingBodyAbortsCleanlyUnderStealing) {
  mx::Machine m(threaded(4));
  try {
    m.run([](mx::Context& ctx) {
      core::parallel_for(ctx, 0, 100, [](std::int64_t i) {
        if (i == 60) throw std::runtime_error("loop body failure");
        volatile double sink =
            steal_heavy(static_cast<double>(i) * 1e-3, i < 25 ? kHeavySteps : 1);
        (void)sink;
      });
    });
    FAIL() << "expected the loop body's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "loop body failure");
  }
}

// Stealing must never cross TASK_PARTITION siblings: arenas are keyed per
// group, so an idle member of "right" can see no chunk of "left"'s loops
// even while both subgroups run imbalanced loops concurrently.
TEST(ExecStealing, StealingConfinedToTaskPartitionSiblings) {
  constexpr std::int64_t N = 256;
  mx::Machine m(threaded(4));
  std::vector<double> out(static_cast<std::size_t>(N), 0.0);
  std::vector<int> who(static_cast<std::size_t>(N), -1);
  std::vector<int> left_members, right_members;
  m.run([&](mx::Context& ctx) {
    core::TaskPartition part(ctx, {{"left", 2}, {"right", 2}}, "steal-split");
    core::TaskRegion region(ctx, part);
    auto run_half = [&](std::int64_t lo, std::int64_t hi, std::vector<int>* members) {
      if (ctx.group().virtual_of(ctx.phys_rank()) == 0) *members = ctx.group().members();
      core::parallel_for(ctx, lo, hi, [&ctx, &out, &who, lo, hi](std::int64_t i) {
        who[static_cast<std::size_t>(i)] = ctx.machine().backend().current_rank();
        out[static_cast<std::size_t>(i)] = steal_heavy(
            static_cast<double>(i) * 1e-3, i - lo < (hi - lo) / 2 ? kHeavySteps / 2 : 1);
      });
    };
    region.on("left", [&] { run_half(0, N / 2, &left_members); });
    region.on("right", [&] { run_half(N / 2, N, &right_members); });
  });

  ASSERT_EQ(left_members.size(), 2u);
  ASSERT_EQ(right_members.size(), 2u);
  auto member_of = [](const std::vector<int>& ms, int r) {
    return std::find(ms.begin(), ms.end(), r) != ms.end();
  };
  for (std::int64_t i = 0; i < N; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const auto& ms = i < N / 2 ? left_members : right_members;
    ASSERT_TRUE(member_of(ms, who[u]))
        << "iteration " << i << " ran on rank " << who[u] << ", outside its subgroup";
    const std::int64_t lo = i < N / 2 ? 0 : N / 2;
    const std::int64_t hi = i < N / 2 ? N / 2 : N;
    const double want = steal_heavy(static_cast<double>(i) * 1e-3,
                                    i - lo < (hi - lo) / 2 ? kHeavySteps / 2 : 1);
    ASSERT_EQ(out[u], want) << "iteration " << i;
  }
}

TEST(ExecStealing, TraceRecordsStealEvents) {
  auto cfg = threaded(4);
  cfg.trace = true;
  const auto r = run_irregular_loop(cfg);
  ASSERT_NE(r.res.trace, nullptr);
  const auto& st = r.res.trace->steals();
  EXPECT_EQ(st.size(), r.res.steals);
  ASSERT_FALSE(st.empty());
  double prev = 0.0;
  for (const auto& s : st) {
    EXPECT_GE(s.t, prev);  // merged shards come out time-ordered
    prev = s.t;
    EXPECT_NE(s.thief, s.victim);
    EXPECT_GE(s.thief, 0);
    EXPECT_LT(s.thief, 4);
    EXPECT_GE(s.victim, 0);
    EXPECT_LT(s.victim, 4);
    EXPECT_GT(s.iters, 0u);
  }
}

// ---------------------------------------------------------------------------
// I/O blocked-time accounting (satellite)
// ---------------------------------------------------------------------------

// Only time spent *waiting for the device lock* is blocked time. A single
// worker can never contend, so a run that is pure io must report zero real
// wait and zero block events — before the fix, the whole io critical
// section was charged as wait.
TEST(ExecThreads, UncontendedIoChargesNoWait) {
  mx::Machine m(threaded(1));
  const auto res = m.run([](mx::Context& ctx) {
    for (int i = 0; i < 16; ++i) ctx.io(std::size_t{1} << 12);
  });
  EXPECT_EQ(res.wait_ms, 0.0);
  ASSERT_EQ(res.clocks.size(), 1u);
  EXPECT_EQ(res.clocks[0].blocks, 0u);
}

// ---------------------------------------------------------------------------
// Group-key collision hardening (satellite)
// ---------------------------------------------------------------------------

// The barrier and loop-arena registries key entries on the group's 64-bit
// content hash. Two distinct groups colliding on that key would silently
// share a TreeBarrier (or arena) of the wrong shape; the registries now
// store the registering member list and fail loudly on mismatch. A real
// FNV-1a collision can't be forged from small member lists, so the guard
// is exercised directly.
TEST(ExecBarriers, GroupKeyCollisionFailsLoudly) {
  const fxpar::pgroup::ProcessorGroup g({0, 1, 2, 3});
  EXPECT_NO_THROW(ex::ThreadedBackend::check_group_key_match(g.members(), g, "barrier"));
  EXPECT_THROW(ex::ThreadedBackend::check_group_key_match({0, 1}, g, "barrier"),
               std::logic_error);
  EXPECT_THROW(ex::ThreadedBackend::check_group_key_match({0, 1, 2, 5}, g, "run_chunks"),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Config plumbing
// ---------------------------------------------------------------------------

TEST(ExecSeam, SimAccessorThrowsOnThreadedBackend) {
  mx::Machine m(threaded(2));
  EXPECT_THROW(m.sim(), std::logic_error);
}

TEST(ExecSeam, BackendKindNames) {
  EXPECT_STREQ(ex::backend_kind_name(ex::BackendKind::Sim), "sim");
  EXPECT_STREQ(ex::backend_kind_name(ex::BackendKind::Threads), "threads");
}
