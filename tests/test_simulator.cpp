// Unit tests for the deterministic discrete-event simulator.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/simulator.hpp"

namespace rt = fxpar::runtime;

namespace {
constexpr std::size_t kStack = 128 * 1024;
}

TEST(Simulator, RunsAllProcsToCompletion) {
  rt::Simulator sim(4, kStack);
  std::vector<bool> ran(4, false);
  for (int r = 0; r < 4; ++r) {
    sim.spawn(r, [&, r] { ran[static_cast<std::size_t>(r)] = true; });
  }
  sim.run();
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(ran[static_cast<std::size_t>(r)]);
  EXPECT_EQ(sim.finish_time(), 0.0);
}

TEST(Simulator, AdvanceAccumulatesBusyTime) {
  rt::Simulator sim(2, kStack);
  sim.spawn(0, [&] {
    sim.advance(1.5);
    sim.advance(0.5);
  });
  sim.spawn(1, [&] { sim.advance(3.0); });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.clock(0).now, 2.0);
  EXPECT_DOUBLE_EQ(sim.clock(0).busy, 2.0);
  EXPECT_DOUBLE_EQ(sim.clock(1).now, 3.0);
  EXPECT_DOUBLE_EQ(sim.finish_time(), 3.0);
}

TEST(Simulator, AdvanceToSkipsForwardAsIdle) {
  rt::Simulator sim(1, kStack);
  sim.spawn(0, [&] {
    sim.advance(1.0);
    sim.advance_to(5.0);
    sim.advance_to(2.0);  // never moves backwards
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.clock(0).now, 5.0);
  EXPECT_DOUBLE_EQ(sim.clock(0).busy, 1.0);
  EXPECT_DOUBLE_EQ(sim.clock(0).idle, 4.0);
}

TEST(Simulator, NegativeAdvanceRejected) {
  rt::Simulator sim(1, kStack);
  sim.spawn(0, [&] { sim.advance(-1.0); });
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(Simulator, SchedulesSmallestClockFirst) {
  // Procs yield after each step; the interleaving must follow virtual time.
  rt::Simulator sim(3, kStack);
  std::vector<int> order;
  // Proc r advances by (r+1) per step, 3 steps each.
  for (int r = 0; r < 3; ++r) {
    sim.spawn(r, [&, r] {
      for (int s = 0; s < 3; ++s) {
        order.push_back(r);
        sim.advance(static_cast<double>(r + 1));
        sim.yield();
      }
    });
  }
  sim.run();
  // Expected: events sorted by (time-before-step, rank):
  // t=0:0,1,2; t=1:0; t=2:0,1; t=3:2(wait, proc2 at t=2? no t=2 after first)
  // Compute manually: p0 steps at 0,1,2 ; p1 at 0,2,4 ; p2 at 0,3,6.
  // Sorted by (t, rank): (0,0)(0,1)(0,2)(1,0)(2,0)(2,1)(3,2)(4,1)(6,2)
  const std::vector<int> expect{0, 1, 2, 0, 0, 1, 2, 1, 2};
  EXPECT_EQ(order, expect);
}

TEST(Simulator, BlockAndWakeTransfersTime) {
  rt::Simulator sim(2, kStack);
  sim.spawn(0, [&] {
    sim.block("waiting for proc 1");
    // Woken at t=7 by proc 1.
    EXPECT_DOUBLE_EQ(sim.now(), 7.0);
  });
  sim.spawn(1, [&] {
    sim.advance(5.0);
    sim.wake(0, 7.0);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.clock(0).idle, 7.0);
  EXPECT_EQ(sim.clock(0).blocks, 1u);
}

TEST(Simulator, WakeNeverMovesClockBackwards) {
  rt::Simulator sim(2, kStack);
  sim.spawn(0, [&] {
    sim.advance(10.0);
    sim.block("waiting");
    EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // wake time 3 < current 10
  });
  sim.spawn(1, [&] {
    // Let proc 0 reach its block first: it blocks at t=10 but is scheduled
    // before us only while runnable; force ordering via yields.
    while (!sim.is_blocked(0)) sim.yield();
    sim.wake(0, 3.0);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.clock(0).now, 10.0);
}

TEST(Simulator, DeadlockDetected) {
  rt::Simulator sim(2, kStack);
  sim.spawn(0, [&] { sim.block("never woken (0)"); });
  sim.spawn(1, [&] { sim.block("never woken (1)"); });
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const rt::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("never woken (0)"), std::string::npos);
    EXPECT_NE(what.find("never woken (1)"), std::string::npos);
  }
}

TEST(Simulator, PartialDeadlockStillDetected) {
  rt::Simulator sim(2, kStack);
  sim.spawn(0, [&] { /* finishes immediately */ });
  sim.spawn(1, [&] { sim.block("stuck"); });
  EXPECT_THROW(sim.run(), rt::DeadlockError);
}

TEST(Simulator, ExceptionInProcPropagates) {
  rt::Simulator sim(2, kStack);
  sim.spawn(0, [] { throw std::runtime_error("proc failure"); });
  sim.spawn(1, [] {});
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, WakeOfRunnableProcRejected) {
  rt::Simulator sim(2, kStack);
  sim.spawn(0, [&] { sim.yield(); });
  sim.spawn(1, [&] { sim.wake(0, 1.0); });
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, MissingSpawnRejected) {
  rt::Simulator sim(2, kStack);
  sim.spawn(0, [] {});
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, DoubleSpawnRejected) {
  rt::Simulator sim(1, kStack);
  sim.spawn(0, [] {});
  EXPECT_THROW(sim.spawn(0, [] {}), std::logic_error);
}

TEST(Simulator, CurrentRankOutsideFiberThrows) {
  rt::Simulator sim(1, kStack);
  EXPECT_THROW(sim.current_rank(), std::logic_error);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    rt::Simulator sim(5, kStack);
    std::vector<int> order;
    for (int r = 0; r < 5; ++r) {
      sim.spawn(r, [&, r] {
        for (int s = 0; s < 4; ++s) {
          order.push_back(r);
          sim.advance(static_cast<double>((r * 7 + s * 3) % 5) + 0.25);
          sim.yield();
        }
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}
