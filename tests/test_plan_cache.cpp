// Tests for the redistribution plan cache internals: flattened schedule
// construction, cache keying and discrimination, eviction safety, and the
// halo exchange schedule.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "dist/plan_cache.hpp"
#include "machine/machine.hpp"

namespace ds = fxpar::dist;
namespace mx = fxpar::machine;
namespace pg = fxpar::pgroup;

namespace {

mx::MachineConfig cfg(int p) {
  auto c = mx::MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

std::int64_t seg_elements(const ds::plan::FlatPlan& fp) {
  std::int64_t n = 0;
  for (const ds::plan::TransferSeg& s : fp.segs) n += s.len;
  return n;
}

}  // namespace

TEST(PlanCache, FlattenedSegmentsCoverEveryPlanElement) {
  const auto g = pg::ProcessorGroup::identity(4);
  const ds::Layout src(g, {9, 7}, {ds::DimDist::block(), ds::DimDist::cyclic()});
  const ds::Layout dst(g, {9, 7}, {ds::DimDist::cyclic(), ds::DimDist::block()});
  const std::vector<int> perm{0, 1};
  const auto sched = ds::plan::build_redist_schedule(src, dst, perm,
                                                     ds::detail::inverse_perm(perm), {0, 0});
  ASSERT_EQ(sched->nsenders, 4);
  ASSERT_EQ(sched->nreceivers, 4);
  std::int64_t total = 0;
  for (int s = 0; s < 4; ++s) {
    for (int r = 0; r < 4; ++r) {
      const ds::plan::FlatPlan& fp = sched->pair(s, r);
      EXPECT_EQ(seg_elements(fp), fp.elements) << "pair " << s << "->" << r;
      // Identity perm: every segment is a contiguous memcpy.
      for (const ds::plan::TransferSeg& sg : fp.segs) EXPECT_EQ(sg.dst_stride, 1);
      total += fp.elements;
    }
  }
  EXPECT_EQ(total, 9 * 7);  // every element handled exactly once
}

TEST(PlanCache, PermutedScheduleCoversDistinctDestinations) {
  const auto g = pg::ProcessorGroup::identity(4);
  const ds::Layout src(g, {6, 8}, {ds::DimDist::block(), ds::DimDist::collapsed()});
  const ds::Layout dst(g, {8, 6}, {ds::DimDist::block(), ds::DimDist::collapsed()});
  const std::vector<int> perm{1, 0};
  const auto sched = ds::plan::build_redist_schedule(src, dst, perm,
                                                     ds::detail::inverse_perm(perm), {0, 0});
  std::int64_t total = 0;
  for (int r = 0; r < 4; ++r) {
    // Per receiver, no two segments may write the same local slot.
    std::set<std::int64_t> slots;
    for (int s = 0; s < 4; ++s) {
      const ds::plan::FlatPlan& fp = sched->pair(s, r);
      EXPECT_EQ(seg_elements(fp), fp.elements);
      for (const ds::plan::TransferSeg& sg : fp.segs) {
        for (std::int64_t k = 0; k < sg.len; ++k) {
          EXPECT_TRUE(slots.insert(sg.dst_off + k * sg.dst_stride).second)
              << "receiver " << r << " slot written twice";
        }
      }
      total += fp.elements;
    }
  }
  EXPECT_EQ(total, 6 * 8);
}

TEST(PlanCache, SameArgumentsHitAndShareTheSchedule) {
  mx::Machine m(cfg(4));
  auto& pc = ds::plan::PlanCache::of(m);
  const auto g = pg::ProcessorGroup::identity(4);
  const ds::Layout src(g, {16}, {ds::DimDist::block()});
  const ds::Layout dst(g, {16}, {ds::DimDist::cyclic()});
  const std::vector<int> perm{0};
  const std::vector<int> inv{0};
  const auto s1 = pc.redist(m, src, dst, perm, inv, {0});
  const auto s2 = pc.redist(m, src, dst, perm, inv, {0});
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_EQ(pc.redist_entries(), 1u);
}

TEST(PlanCache, KeyDiscriminatesLayoutDetails) {
  mx::Machine m(cfg(4));
  auto& pc = ds::plan::PlanCache::of(m);
  const auto g = pg::ProcessorGroup::identity(4);
  const std::vector<int> perm{0};
  const std::vector<int> inv{0};
  const ds::Layout b16(g, {16}, {ds::DimDist::block()});
  const ds::Layout c16(g, {16}, {ds::DimDist::cyclic()});
  const ds::Layout bc2(g, {16}, {ds::DimDist::block_cyclic(2)});
  const ds::Layout bc4(g, {16}, {ds::DimDist::block_cyclic(4)});
  const ds::Layout b20(g, {20}, {ds::DimDist::block()});
  const pg::ProcessorGroup sub({0, 1});
  const ds::Layout bsub(sub, {16}, {ds::DimDist::block()});
  pc.redist(m, b16, c16, perm, inv, {0});
  pc.redist(m, b16, bc2, perm, inv, {0});   // distribution kind
  pc.redist(m, b16, bc4, perm, inv, {0});   // block size
  pc.redist(m, b20, c16, perm, inv, {0});   // extent (shifted assigns clip)
  pc.redist(m, bsub, c16, perm, inv, {0});  // group membership
  pc.redist(m, b16, c16, perm, inv, {2});   // offset
  EXPECT_EQ(pc.redist_entries(), 6u);
  pc.redist(m, b16, c16, perm, inv, {0});  // replay of the first
  EXPECT_EQ(pc.redist_entries(), 6u);
}

TEST(PlanCache, EvictionKeepsOutstandingSchedulesAlive) {
  mx::Machine m(cfg(2));
  auto& pc = ds::plan::PlanCache::of(m);
  const auto g = pg::ProcessorGroup::identity(2);
  const std::vector<int> perm{0};
  const std::vector<int> inv{0};
  const ds::Layout src0(g, {8}, {ds::DimDist::block()});
  const ds::Layout dst0(g, {8}, {ds::DimDist::cyclic()});
  const auto held = pc.redist(m, src0, dst0, perm, inv, {0});
  const std::int64_t held_elems = held->pair(0, 0).elements + held->pair(0, 1).elements +
                                  held->pair(1, 0).elements + held->pair(1, 1).elements;
  EXPECT_EQ(held_elems, 8);
  // Flood the table past capacity; the wholesale eviction must not touch
  // the schedule a (possibly blocked) caller still holds.
  for (std::int64_t n = 9; n < 9 + 2 * static_cast<std::int64_t>(
                                       ds::plan::PlanCache::kMaxEntries);
       ++n) {
    const ds::Layout s(g, {n}, {ds::DimDist::block()});
    const ds::Layout d(g, {n}, {ds::DimDist::cyclic()});
    pc.redist(m, s, d, perm, inv, {0});
  }
  EXPECT_LE(pc.redist_entries(), ds::plan::PlanCache::kMaxEntries);
  std::int64_t again = 0;
  for (int s = 0; s < 2; ++s) {
    for (int r = 0; r < 2; ++r) again += held->pair(s, r).elements;
  }
  EXPECT_EQ(again, 8);  // still fully readable after eviction
}

TEST(PlanCache, ReplicatedSourceStoresOneSenderSlot) {
  const auto g = pg::ProcessorGroup::identity(3);
  const ds::Layout src(g, {9}, {ds::DimDist::collapsed()});
  const ds::Layout dst(g, {9}, {ds::DimDist::block()});
  const std::vector<int> perm{0};
  const auto sched = ds::plan::build_redist_schedule(src, dst, perm,
                                                     ds::detail::inverse_perm(perm), {0});
  EXPECT_TRUE(sched->src_replicated);
  EXPECT_EQ(sched->nsenders, 1);
  EXPECT_EQ(sched->pairs.size(), 3u);
  // pair() maps every sender vrank onto the canonical slot.
  for (int s = 0; s < 3; ++s) EXPECT_EQ(sched->pair(s, 1).elements, 3);
}

TEST(PlanCache, HaloScheduleBalancesSendsAndReceives) {
  const auto g = pg::ProcessorGroup::identity(4);
  const ds::Layout lay(g, {2, 13, 5},
                       {ds::DimDist::collapsed(), ds::DimDist::block(), ds::DimDist::collapsed()});
  const auto sched = ds::plan::build_halo_schedule(lay, 2);
  ASSERT_EQ(sched->members.size(), 4u);
  std::int64_t sent = 0, received = 0;
  for (const auto& mp : sched->members) {
    for (const auto& snd : mp.sends) {
      EXPECT_FALSE(snd.local_rows.empty());
      for (std::int64_t lr : snd.local_rows) {
        EXPECT_GE(lr, 0);
        EXPECT_LT(lr, mp.my_hi - mp.my_lo);
      }
      sent += static_cast<std::int64_t>(snd.local_rows.size());
    }
    EXPECT_EQ(mp.n_above + mp.n_below,
              std::accumulate(mp.recvs.begin(), mp.recvs.end(), std::int64_t{0},
                              [](std::int64_t acc, const auto& rcv) {
                                return acc + static_cast<std::int64_t>(rcv.rows.size());
                              }));
    received += mp.n_above + mp.n_below;
  }
  EXPECT_EQ(sent, received);
}
