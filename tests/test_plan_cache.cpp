// Tests for the redistribution plan cache internals: flattened schedule
// construction, cache keying and discrimination, eviction safety, and the
// halo exchange schedule.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "dist/plan_cache.hpp"
#include "machine/machine.hpp"

namespace ds = fxpar::dist;
namespace mx = fxpar::machine;
namespace pg = fxpar::pgroup;

namespace {

mx::MachineConfig cfg(int p) {
  auto c = mx::MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

std::int64_t seg_elements(const ds::plan::FlatPlan& fp) {
  std::int64_t n = 0;
  for (const ds::plan::TransferSeg& s : fp.segs) n += s.len;
  return n;
}

}  // namespace

TEST(PlanCache, FlattenedSegmentsCoverEveryPlanElement) {
  const auto g = pg::ProcessorGroup::identity(4);
  const ds::Layout src(g, {9, 7}, {ds::DimDist::block(), ds::DimDist::cyclic()});
  const ds::Layout dst(g, {9, 7}, {ds::DimDist::cyclic(), ds::DimDist::block()});
  const std::vector<int> perm{0, 1};
  const auto sched = ds::plan::build_redist_schedule(src, dst, perm,
                                                     ds::detail::inverse_perm(perm), {0, 0});
  ASSERT_EQ(sched->nsenders, 4);
  ASSERT_EQ(sched->nreceivers, 4);
  std::int64_t total = 0;
  for (int s = 0; s < 4; ++s) {
    for (int r = 0; r < 4; ++r) {
      const ds::plan::FlatPlan& fp = sched->pair(s, r);
      EXPECT_EQ(seg_elements(fp), fp.elements) << "pair " << s << "->" << r;
      // Identity perm: every segment is a contiguous memcpy.
      for (const ds::plan::TransferSeg& sg : fp.segs) EXPECT_EQ(sg.dst_stride, 1);
      total += fp.elements;
    }
  }
  EXPECT_EQ(total, 9 * 7);  // every element handled exactly once
}

TEST(PlanCache, PermutedScheduleCoversDistinctDestinations) {
  const auto g = pg::ProcessorGroup::identity(4);
  const ds::Layout src(g, {6, 8}, {ds::DimDist::block(), ds::DimDist::collapsed()});
  const ds::Layout dst(g, {8, 6}, {ds::DimDist::block(), ds::DimDist::collapsed()});
  const std::vector<int> perm{1, 0};
  const auto sched = ds::plan::build_redist_schedule(src, dst, perm,
                                                     ds::detail::inverse_perm(perm), {0, 0});
  std::int64_t total = 0;
  for (int r = 0; r < 4; ++r) {
    // Per receiver, no two segments may write the same local slot.
    std::set<std::int64_t> slots;
    for (int s = 0; s < 4; ++s) {
      const ds::plan::FlatPlan& fp = sched->pair(s, r);
      EXPECT_EQ(seg_elements(fp), fp.elements);
      for (const ds::plan::TransferSeg& sg : fp.segs) {
        for (std::int64_t k = 0; k < sg.len; ++k) {
          EXPECT_TRUE(slots.insert(sg.dst_off + k * sg.dst_stride).second)
              << "receiver " << r << " slot written twice";
        }
      }
      total += fp.elements;
    }
  }
  EXPECT_EQ(total, 6 * 8);
}

TEST(PlanCache, SameArgumentsHitAndShareTheSchedule) {
  mx::Machine m(cfg(4));
  auto& pc = ds::plan::PlanCache::of(m);
  const auto g = pg::ProcessorGroup::identity(4);
  const ds::Layout src(g, {16}, {ds::DimDist::block()});
  const ds::Layout dst(g, {16}, {ds::DimDist::cyclic()});
  const std::vector<int> perm{0};
  const std::vector<int> inv{0};
  const auto s1 = pc.redist(m, src, dst, perm, inv, {0});
  const auto s2 = pc.redist(m, src, dst, perm, inv, {0});
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_EQ(pc.redist_entries(), 1u);
}

TEST(PlanCache, KeyDiscriminatesLayoutDetails) {
  mx::Machine m(cfg(4));
  auto& pc = ds::plan::PlanCache::of(m);
  const auto g = pg::ProcessorGroup::identity(4);
  const std::vector<int> perm{0};
  const std::vector<int> inv{0};
  const ds::Layout b16(g, {16}, {ds::DimDist::block()});
  const ds::Layout c16(g, {16}, {ds::DimDist::cyclic()});
  const ds::Layout bc2(g, {16}, {ds::DimDist::block_cyclic(2)});
  const ds::Layout bc4(g, {16}, {ds::DimDist::block_cyclic(4)});
  const ds::Layout b20(g, {20}, {ds::DimDist::block()});
  const pg::ProcessorGroup sub({0, 1});
  const ds::Layout bsub(sub, {16}, {ds::DimDist::block()});
  pc.redist(m, b16, c16, perm, inv, {0});
  pc.redist(m, b16, bc2, perm, inv, {0});   // distribution kind
  pc.redist(m, b16, bc4, perm, inv, {0});   // block size
  pc.redist(m, b20, c16, perm, inv, {0});   // extent (shifted assigns clip)
  pc.redist(m, bsub, c16, perm, inv, {0});  // group membership
  pc.redist(m, b16, c16, perm, inv, {2});   // offset
  EXPECT_EQ(pc.redist_entries(), 6u);
  pc.redist(m, b16, c16, perm, inv, {0});  // replay of the first
  EXPECT_EQ(pc.redist_entries(), 6u);
}

TEST(PlanCache, EvictionKeepsOutstandingSchedulesAlive) {
  mx::Machine m(cfg(2));
  auto& pc = ds::plan::PlanCache::of(m);
  const auto g = pg::ProcessorGroup::identity(2);
  const std::vector<int> perm{0};
  const std::vector<int> inv{0};
  const ds::Layout src0(g, {8}, {ds::DimDist::block()});
  const ds::Layout dst0(g, {8}, {ds::DimDist::cyclic()});
  const auto held = pc.redist(m, src0, dst0, perm, inv, {0});
  const std::int64_t held_elems = held->pair(0, 0).elements + held->pair(0, 1).elements +
                                  held->pair(1, 0).elements + held->pair(1, 1).elements;
  EXPECT_EQ(held_elems, 8);
  // Flood the table past capacity; the wholesale eviction must not touch
  // the schedule a (possibly blocked) caller still holds.
  for (std::int64_t n = 9; n < 9 + 2 * static_cast<std::int64_t>(
                                       ds::plan::PlanCache::kMaxEntries);
       ++n) {
    const ds::Layout s(g, {n}, {ds::DimDist::block()});
    const ds::Layout d(g, {n}, {ds::DimDist::cyclic()});
    pc.redist(m, s, d, perm, inv, {0});
  }
  EXPECT_LE(pc.redist_entries(), ds::plan::PlanCache::kMaxEntries);
  std::int64_t again = 0;
  for (int s = 0; s < 2; ++s) {
    for (int r = 0; r < 2; ++r) again += held->pair(s, r).elements;
  }
  EXPECT_EQ(again, 8);  // still fully readable after eviction
}

TEST(PlanCache, ReplicatedSourceStoresOneSenderSlot) {
  const auto g = pg::ProcessorGroup::identity(3);
  const ds::Layout src(g, {9}, {ds::DimDist::collapsed()});
  const ds::Layout dst(g, {9}, {ds::DimDist::block()});
  const std::vector<int> perm{0};
  const auto sched = ds::plan::build_redist_schedule(src, dst, perm,
                                                     ds::detail::inverse_perm(perm), {0});
  EXPECT_TRUE(sched->src_replicated);
  EXPECT_EQ(sched->nsenders, 1);
  EXPECT_EQ(sched->pairs.size(), 3u);
  // pair() maps every sender vrank onto the canonical slot.
  for (int s = 0; s < 3; ++s) EXPECT_EQ(sched->pair(s, 1).elements, 3);
}

TEST(PlanCache, HaloScheduleBalancesSendsAndReceives) {
  const auto g = pg::ProcessorGroup::identity(4);
  const ds::Layout lay(g, {2, 13, 5},
                       {ds::DimDist::collapsed(), ds::DimDist::block(), ds::DimDist::collapsed()});
  const auto sched = ds::plan::build_halo_schedule(lay, 2);
  ASSERT_EQ(sched->members.size(), 4u);
  std::int64_t sent = 0, received = 0;
  for (const auto& mp : sched->members) {
    for (const auto& snd : mp.sends) {
      EXPECT_FALSE(snd.local_rows.empty());
      for (std::int64_t lr : snd.local_rows) {
        EXPECT_GE(lr, 0);
        EXPECT_LT(lr, mp.my_hi - mp.my_lo);
      }
      sent += static_cast<std::int64_t>(snd.local_rows.size());
    }
    EXPECT_EQ(mp.n_above + mp.n_below,
              std::accumulate(mp.recvs.begin(), mp.recvs.end(), std::int64_t{0},
                              [](std::int64_t acc, const auto& rcv) {
                                return acc + static_cast<std::int64_t>(rcv.rows.size());
                              }));
    received += mp.n_above + mp.n_below;
  }
  EXPECT_EQ(sent, received);
}

// ---------------------------------------------------------------------------
// Collective plan cache (comm/collective_plan.hpp): schedule builders,
// cached-vs-uncached bit parity on both backends, hit/miss accounting,
// and the group-key collision guard.
// ---------------------------------------------------------------------------

#include <cmath>
#include <cstring>
#include <functional>

#include "comm/collective_plan.hpp"
#include "comm/collectives.hpp"
#include "exec/backend.hpp"

namespace cm = fxpar::comm;
namespace cp = fxpar::comm::plan;
namespace ex = fxpar::exec;

#if defined(__SANITIZE_THREAD__)
#define FXPAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FXPAR_TSAN 1
#endif
#endif

namespace {

std::vector<int> iota_members(int n) {
  std::vector<int> m(static_cast<std::size_t>(n));
  std::iota(m.begin(), m.end(), 0);
  return m;
}

}  // namespace

TEST(CollectivePlan, TreeScheduleMatchesBinomialStructure) {
  for (int n : {1, 2, 3, 4, 5, 7, 8, 13}) {
    for (int root : {0, n / 2, n - 1}) {
      const cp::TreeSchedule t = cp::build_tree_schedule(iota_members(n), root);
      ASSERT_EQ(static_cast<int>(t.nodes.size()), n);
      EXPECT_EQ(t.root, root);
      // The root has no parents; everyone else has exactly one of each.
      int reduce_edges = 0, bcast_edges = 0;
      for (int v = 0; v < n; ++v) {
        const auto& nd = t.nodes[static_cast<std::size_t>(v)];
        if (v == root) {
          EXPECT_EQ(nd.reduce_parent, -1);
          EXPECT_EQ(nd.bcast_parent, -1);
        } else {
          EXPECT_GE(nd.reduce_parent, 0);
          EXPECT_GE(nd.bcast_parent, 0);
        }
        reduce_edges += static_cast<int>(nd.reduce_children.size());
        bcast_edges += static_cast<int>(nd.bcast_children.size());
        // Parent/child lists are mutually consistent.
        for (int c : nd.reduce_children) {
          EXPECT_EQ(t.nodes[static_cast<std::size_t>(c)].reduce_parent, v);
        }
        for (int c : nd.bcast_children) {
          EXPECT_EQ(t.nodes[static_cast<std::size_t>(c)].bcast_parent, v);
        }
      }
      // A tree over n nodes has n-1 edges in each direction.
      EXPECT_EQ(reduce_edges, n - 1) << "n=" << n << " root=" << root;
      EXPECT_EQ(bcast_edges, n - 1) << "n=" << n << " root=" << root;
    }
  }
}

TEST(CollectivePlan, RootedScheduleListsPeersAscending) {
  const cp::RootedSchedule r = cp::build_rooted_schedule(iota_members(5), 2);
  EXPECT_EQ(r.root, 2);
  EXPECT_EQ(r.peers, (std::vector<int>{0, 1, 3, 4}));
}

TEST(CollectivePlan, CacheHitsShareTheSchedule) {
  mx::Machine m(cfg(4));
  auto& cc = cp::CollectiveCache::of(m);
  const auto g = pg::ProcessorGroup::identity(4);
  const auto t1 = cc.tree(m, g, 0);
  const auto t2 = cc.tree(m, g, 0);
  EXPECT_EQ(t1.get(), t2.get());
  EXPECT_EQ(cc.tree_entries(), 1u);
  // A different root is a different entry.
  const auto t3 = cc.tree(m, g, 2);
  EXPECT_NE(t1.get(), t3.get());
  EXPECT_EQ(cc.tree_entries(), 2u);
  // Tree and rooted tables are independent.
  (void)cc.rooted(m, g, 0);
  EXPECT_EQ(cc.rooted_entries(), 1u);
  EXPECT_EQ(cc.tree_entries(), 2u);
}

TEST(CollectivePlan, GroupKeyCollisionGuardThrows) {
  const pg::ProcessorGroup g({0, 1, 2});
  // Matching member list passes.
  EXPECT_NO_THROW(cp::CollectiveCache::check_members({0, 1, 2}, g, "tree"));
  // A different list under the same key must be rejected, not replayed.
  EXPECT_THROW(cp::CollectiveCache::check_members({0, 1, 3}, g, "tree"), std::logic_error);
  EXPECT_THROW(cp::CollectiveCache::check_members({0, 1}, g, "tree"), std::logic_error);
}

TEST(CollectivePlan, EvictionKeepsOutstandingSchedulesAlive) {
  mx::Machine m(cfg(2));
  auto& cc = cp::CollectiveCache::of(m);
  const auto g = pg::ProcessorGroup::identity(2);
  const auto held = cc.tree(m, g, 0);
  // Flood with distinct roots over distinct subgroups to pass capacity.
  for (std::size_t i = 0; i < 2 * cp::CollectiveCache::kMaxEntries; ++i) {
    (void)cc.tree(m, g, static_cast<int>(i % 2));
    const pg::ProcessorGroup sub({static_cast<int>(i % 2)});
    (void)cc.tree(m, sub, 0);
  }
  EXPECT_LE(cc.tree_entries(), cp::CollectiveCache::kMaxEntries);
  EXPECT_EQ(static_cast<int>(held->nodes.size()), 2);  // still readable
}

namespace {

/// One deterministic SPMD program exercising every cached collective over
/// the whole machine and over a subgroup with a non-zero root; returns each
/// rank's flattened outputs so runs can be compared bit-for-bit.
struct SweepResult {
  std::vector<std::vector<double>> per_rank;
  mx::RunResult run;
};

SweepResult run_collective_sweep(ex::BackendKind kind, bool cache_on, int p) {
  auto c = cfg(p);
  c.backend = kind;
  c.plan_cache = cache_on;
  mx::Machine m(c);
  SweepResult out;
  out.per_rank.assign(static_cast<std::size_t>(p), {});
  out.run = m.run([&](mx::Context& ctx) {
    const int r = ctx.phys_rank();
    std::vector<double>& log = out.per_rank[static_cast<std::size_t>(r)];
    const auto g = pg::ProcessorGroup::identity(p);
    const int root = p - 1;

    // broadcast_vector from a non-zero root.
    std::vector<double> b(17);
    if (r == root) {
      for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 / (1.0 + static_cast<double>(i));
    }
    b = cm::broadcast_vector(ctx, g, root, b);
    log.insert(log.end(), b.begin(), b.end());

    // Scalar reduce + allreduce (sum is order-sensitive in floats; parity
    // requires the cached path to combine in the same order).
    const double s = cm::reduce(ctx, g, root, 0.1 * (r + 1), std::plus<double>{});
    log.push_back(s);
    log.push_back(cm::allreduce(ctx, g, 1.0 / (r + 2), std::plus<double>{}));

    // Vector reduce / allreduce.
    std::vector<double> v(33);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = std::sin(static_cast<double>(i) + r);
    }
    const auto rv = cm::reduce_vector(ctx, g, 0, v, std::plus<double>{});
    log.insert(log.end(), rv.begin(), rv.end());
    const auto av = cm::allreduce_vector(ctx, g, v, std::plus<double>{});
    log.insert(log.end(), av.begin(), av.end());

    // Scalar gather, vector gather, scatter.
    const auto gs = cm::gather(ctx, g, root, 2.5 * r + 0.25);
    log.insert(log.end(), gs.begin(), gs.end());
    std::vector<double> mine(static_cast<std::size_t>(r + 1), 0.5 * r);
    const auto gv = cm::gather_vectors(ctx, g, 0, mine);
    log.insert(log.end(), gv.begin(), gv.end());
    std::vector<std::vector<double>> parts;
    if (r == root) {
      for (int q = 0; q < p; ++q) {
        parts.emplace_back(static_cast<std::size_t>(q + 2), 1.5 * q);
      }
    }
    const auto sv = cm::scatter_vectors(ctx, g, root, parts);
    log.insert(log.end(), sv.begin(), sv.end());

    // Subgroup collective: only even ranks participate.
    std::vector<int> evens;
    for (int q = 0; q < p; q += 2) evens.push_back(q);
    const pg::ProcessorGroup sub(evens);
    if (sub.contains(r)) {
      const double e = cm::allreduce(ctx, sub, 3.0 + r, std::plus<double>{});
      log.push_back(e);
    }
  });
  return out;
}

void expect_sweeps_identical(const SweepResult& a, const SweepResult& b, const char* what) {
  ASSERT_EQ(a.per_rank.size(), b.per_rank.size());
  for (std::size_t r = 0; r < a.per_rank.size(); ++r) {
    ASSERT_EQ(a.per_rank[r].size(), b.per_rank[r].size()) << what << " rank " << r;
    if (!a.per_rank[r].empty()) {
      EXPECT_EQ(std::memcmp(a.per_rank[r].data(), b.per_rank[r].data(),
                            a.per_rank[r].size() * sizeof(double)),
                0)
          << what << " rank " << r;
    }
  }
}

}  // namespace

TEST(CollectivePlan, CachedMatchesUncachedBitForBitOnSim) {
#ifdef FXPAR_TSAN
  GTEST_SKIP() << "simulator fibers (ucontext) are incompatible with ThreadSanitizer";
#endif
  for (int p : {2, 3, 5, 8}) {
    const SweepResult on = run_collective_sweep(ex::BackendKind::Sim, true, p);
    const SweepResult off = run_collective_sweep(ex::BackendKind::Sim, false, p);
    expect_sweeps_identical(on, off, "sim");
    EXPECT_GT(on.run.collective_plan_hits + on.run.collective_plan_misses, 0u);
    EXPECT_EQ(off.run.collective_plan_hits, 0u);
    EXPECT_EQ(off.run.collective_plan_misses, 0u);
    // Modeled time is untouched by the cache.
    EXPECT_EQ(on.run.finish_time, off.run.finish_time) << "p=" << p;
  }
}

TEST(CollectivePlan, CachedMatchesUncachedBitForBitOnThreads) {
  for (int p : {2, 3, 5, 8}) {
    const SweepResult on = run_collective_sweep(ex::BackendKind::Threads, true, p);
    const SweepResult off = run_collective_sweep(ex::BackendKind::Threads, false, p);
    expect_sweeps_identical(on, off, "threads");
    EXPECT_GT(on.run.collective_plan_hits + on.run.collective_plan_misses, 0u);
  }
}

TEST(CollectivePlan, ThreadsMatchSimWithCacheOn) {
#ifdef FXPAR_TSAN
  GTEST_SKIP() << "simulator fibers (ucontext) are incompatible with ThreadSanitizer";
#endif
  const SweepResult sim = run_collective_sweep(ex::BackendKind::Sim, true, 6);
  const SweepResult thr = run_collective_sweep(ex::BackendKind::Threads, true, 6);
  expect_sweeps_identical(sim, thr, "cross-backend");
}

TEST(CollectivePlan, HitMissTotalsAreSpmdShaped) {
#ifdef FXPAR_TSAN
  GTEST_SKIP() << "simulator fibers (ucontext) are incompatible with ThreadSanitizer";
#endif
  const int p = 4;
  auto c = cfg(p);
  c.plan_cache = true;
  mx::Machine m(c);
  const auto res = m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(p);
    for (int it = 0; it < 3; ++it) {
      (void)cm::allreduce(ctx, g, 1.0, std::plus<double>{});
    }
  });
  // allreduce = reduce + broadcast over one tree entry: the first member to
  // arrive builds it (one miss); every other lookup — all p members, three
  // iterations, two phases — hits.
  EXPECT_EQ(res.collective_plan_misses, 1u);
  EXPECT_EQ(res.collective_plan_hits, static_cast<std::uint64_t>(3 * 2 * p - 1));
}
