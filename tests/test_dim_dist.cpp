// Unit and property tests for the per-dimension distribution algebra.
#include <gtest/gtest.h>

#include <tuple>

#include "dist/dim_dist.hpp"

namespace ds = fxpar::dist;

TEST(DimDist, BlockBasics) {
  const auto d = ds::DimDist::block();
  // n=10, p=3 -> block size 4: [0,4) [4,8) [8,10).
  EXPECT_EQ(d.block_size(10, 3), 4);
  EXPECT_EQ(d.owner(0, 10, 3), 0);
  EXPECT_EQ(d.owner(3, 10, 3), 0);
  EXPECT_EQ(d.owner(4, 10, 3), 1);
  EXPECT_EQ(d.owner(9, 10, 3), 2);
  EXPECT_EQ(d.local_count(0, 10, 3), 4);
  EXPECT_EQ(d.local_count(1, 10, 3), 4);
  EXPECT_EQ(d.local_count(2, 10, 3), 2);
  EXPECT_EQ(d.global_to_local(5, 10, 3), 1);
  EXPECT_EQ(d.local_to_global(2, 1, 10, 3), 9);
}

TEST(DimDist, CyclicBasics) {
  const auto d = ds::DimDist::cyclic();
  EXPECT_EQ(d.block_size(10, 3), 1);
  EXPECT_EQ(d.owner(0, 10, 3), 0);
  EXPECT_EQ(d.owner(1, 10, 3), 1);
  EXPECT_EQ(d.owner(5, 10, 3), 2);
  EXPECT_EQ(d.local_count(0, 10, 3), 4);  // 0,3,6,9
  EXPECT_EQ(d.local_count(2, 10, 3), 3);  // 2,5,8
  EXPECT_EQ(d.global_to_local(6, 10, 3), 2);
  EXPECT_EQ(d.local_to_global(1, 2, 10, 3), 7);
}

TEST(DimDist, BlockCyclicBasics) {
  const auto d = ds::DimDist::block_cyclic(2);
  // n=10, p=2, b=2: courses 0..4, owners 0,1,0,1,0.
  EXPECT_EQ(d.owner(0, 10, 2), 0);
  EXPECT_EQ(d.owner(2, 10, 2), 1);
  EXPECT_EQ(d.owner(4, 10, 2), 0);
  EXPECT_EQ(d.local_count(0, 10, 2), 6);
  EXPECT_EQ(d.local_count(1, 10, 2), 4);
  EXPECT_EQ(d.global_to_local(5, 10, 2), 3);   // course 2 is owner 0; (5 in course 2)
  EXPECT_EQ(d.local_to_global(1, 3, 10, 2), 7);
}

TEST(DimDist, CollapsedOwnsEverything) {
  const auto d = ds::DimDist::collapsed();
  EXPECT_FALSE(d.distributed());
  EXPECT_EQ(d.owner(7, 10, 3), 0);
  EXPECT_EQ(d.local_count(0, 10, 3), 10);
  EXPECT_EQ(d.global_to_local(7, 10, 3), 7);
  const auto runs = d.owned_runs(0, 10, 3);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (ds::IndexRun{0, 10}));
}

TEST(DimDist, PartialLastBlock) {
  const auto d = ds::DimDist::block();
  // n=7, p=4 -> b=2: [0,2)[2,4)[4,6)[6,7).
  EXPECT_EQ(d.local_count(3, 7, 4), 1);
  EXPECT_EQ(d.owner(6, 7, 4), 3);
  // n=5, p=4 -> b=2: coords 0,1,2 own 2,2,1; coord 3 owns nothing.
  EXPECT_EQ(d.local_count(3, 5, 4), 0);
  EXPECT_TRUE(d.owned_runs(3, 5, 4).empty());
}

TEST(DimDist, BlockCyclicRejectsBadBlock) {
  EXPECT_THROW(ds::DimDist::block_cyclic(0), std::invalid_argument);
  EXPECT_THROW(ds::DimDist::block_cyclic(-3), std::invalid_argument);
}

TEST(DimDist, OutOfRangeIndices) {
  const auto d = ds::DimDist::block();
  EXPECT_THROW(d.owner(10, 10, 2), std::out_of_range);
  EXPECT_THROW(d.owner(-1, 10, 2), std::out_of_range);
  EXPECT_THROW(d.global_to_local(10, 10, 2), std::out_of_range);
  EXPECT_THROW(d.local_to_global(0, 5, 10, 2), std::out_of_range);
  EXPECT_THROW(d.local_count(2, 10, 2), std::out_of_range);
}

TEST(IntersectRuns, BasicOverlaps) {
  using R = ds::IndexRun;
  const std::vector<R> a{{0, 4}, {8, 4}};
  const std::vector<R> b{{2, 8}};
  const auto c = ds::intersect_runs(a, b);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], (R{2, 2}));
  EXPECT_EQ(c[1], (R{8, 2}));
  EXPECT_EQ(ds::total_length(c), 4);
}

TEST(IntersectRuns, DisjointGivesEmpty) {
  EXPECT_TRUE(ds::intersect_runs({{0, 2}}, {{5, 2}}).empty());
  EXPECT_TRUE(ds::intersect_runs({}, {{0, 5}}).empty());
}

// ---- property sweeps over (kind, n, p) ----

struct SweepCase {
  ds::DimDist dist;
  std::int64_t n;
  int p;
};

class DimDistSweep : public ::testing::TestWithParam<std::tuple<int, std::int64_t, int>> {
 protected:
  ds::DimDist make_dist() const {
    switch (std::get<0>(GetParam())) {
      case 0: return ds::DimDist::block();
      case 1: return ds::DimDist::cyclic();
      case 2: return ds::DimDist::block_cyclic(3);
      default: return ds::DimDist::collapsed();
    }
  }
  std::int64_t n() const { return std::get<1>(GetParam()); }
  int p() const { return std::get<2>(GetParam()); }
  int coords() const { return make_dist().distributed() ? p() : 1; }
};

TEST_P(DimDistSweep, EveryIndexHasExactlyOneOwner) {
  const auto d = make_dist();
  for (std::int64_t i = 0; i < n(); ++i) {
    const int o = d.owner(i, n(), p());
    EXPECT_GE(o, 0);
    EXPECT_LT(o, coords());
  }
}

TEST_P(DimDistSweep, LocalCountsSumToExtent) {
  const auto d = make_dist();
  std::int64_t total = 0;
  for (int c = 0; c < coords(); ++c) total += d.local_count(c, n(), p());
  EXPECT_EQ(total, n());
}

TEST_P(DimDistSweep, GlobalLocalRoundTrip) {
  const auto d = make_dist();
  for (std::int64_t i = 0; i < n(); ++i) {
    const int o = d.owner(i, n(), p());
    const std::int64_t l = d.global_to_local(i, n(), p());
    EXPECT_GE(l, 0);
    EXPECT_LT(l, d.local_count(o, n(), p()));
    EXPECT_EQ(d.local_to_global(o, l, n(), p()), i);
  }
}

TEST_P(DimDistSweep, OwnedRunsMatchOwnership) {
  const auto d = make_dist();
  for (int c = 0; c < coords(); ++c) {
    const auto runs = d.owned_runs(c, n(), p());
    std::int64_t covered = 0;
    std::int64_t prev_end = -1;
    for (const auto& r : runs) {
      EXPECT_GT(r.len, 0);
      EXPECT_GT(r.start, prev_end);  // increasing, non-overlapping
      prev_end = r.start + r.len - 1;
      covered += r.len;
      for (std::int64_t i = r.start; i < r.start + r.len; ++i) {
        EXPECT_EQ(d.owner(i, n(), p()), c);
      }
    }
    EXPECT_EQ(covered, d.local_count(c, n(), p()));
  }
}

TEST_P(DimDistSweep, LocalOrderFollowsGlobalOrder) {
  // local_to_global must be strictly increasing in the local index.
  const auto d = make_dist();
  for (int c = 0; c < coords(); ++c) {
    const std::int64_t cnt = d.local_count(c, n(), p());
    std::int64_t prev = -1;
    for (std::int64_t l = 0; l < cnt; ++l) {
      const std::int64_t g = d.local_to_global(c, l, n(), p());
      EXPECT_GT(g, prev);
      prev = g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsByShapes, DimDistSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),        // kind
                       ::testing::Values<std::int64_t>(1, 2, 7, 16, 31, 64, 100),  // n
                       ::testing::Values(1, 2, 3, 5, 8)));   // p
