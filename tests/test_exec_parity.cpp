// Cross-backend parity sweep: deterministic Fx programs must produce
// bit-identical array contents on the discrete-event simulator and the
// threaded shared-memory backend (docs/execution.md, "Determinism
// contract"). Four applications: FFT-Hist (data parallel and pipelined),
// the radar benchmark, nested task parallel quicksort, and a synthetic
// floating-point stream pipeline whose outputs are compared at the bit
// level.
//
// Every test here runs the simulator, whose ucontext fibers are
// incompatible with ThreadSanitizer — all tests self-skip under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "apps/ffthist.hpp"
#include "apps/quicksort.hpp"
#include "apps/radar.hpp"
#include "apps/stream_pipeline.hpp"
#include "comm/serialize.hpp"

#if defined(__SANITIZE_THREAD__)
#define FXPAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FXPAR_TSAN 1
#endif
#endif

#ifdef FXPAR_TSAN
#define FXPAR_SKIP_SIM_UNDER_TSAN() \
  GTEST_SKIP() << "simulator fibers (ucontext) are incompatible with ThreadSanitizer"
#else
#define FXPAR_SKIP_SIM_UNDER_TSAN() (void)0
#endif

namespace ap = fxpar::apps;
namespace ds = fxpar::dist;
namespace ex = fxpar::exec;
namespace mx = fxpar::machine;
using fxpar::MachineConfig;

namespace {

MachineConfig backend_cfg(int p, ex::BackendKind kind, std::size_t stack = 256 * 1024) {
  auto c = MachineConfig::paragon(p);
  c.backend = kind;
  c.stack_bytes = stack;
  return c;
}

MachineConfig proc_cfg(int p, ex::TransportKind transport, std::size_t stack = 256 * 1024) {
  auto c = backend_cfg(p, ex::BackendKind::Proc, stack);
  c.transport = transport;
  return c;
}

// On the process backend each rank is a forked child: a sink captured by
// reference is written in the child's private memory and never reaches the
// driver unless physical rank 0 wrote it. When the recording rank is not
// phys 0, this epilogue ships every data set's row to rank 0 after the
// stream drains. Harmless on sim/threads (rank 0 overwrites the shared sink
// with identical bytes), so the same program runs on every backend.
template <typename T>
std::function<void(mx::Context&)> funnel_sink(std::vector<std::vector<T>>& sink,
                                              int writer_phys) {
  if (writer_phys == 0) return {};
  return [&sink, writer_phys](mx::Context& ctx) {
    constexpr int kTag0 = 7100;
    if (ctx.phys_rank() == writer_phys) {
      for (std::size_t k = 0; k < sink.size(); ++k) {
        ctx.send_phys(0, kTag0 + static_cast<int>(k),
                      fxpar::comm::pack_span(std::span<const T>(sink[k])));
      }
    } else if (ctx.phys_rank() == 0) {
      for (std::size_t k = 0; k < sink.size(); ++k) {
        sink[k] = fxpar::comm::unpack_vector<T>(
            ctx.recv_phys(writer_phys, kTag0 + static_cast<int>(k)));
      }
    }
  };
}

template <typename T>
void expect_bit_identical(const std::vector<T>& sim, const std::vector<T>& thr,
                          const char* what, int k) {
  ASSERT_EQ(sim.size(), thr.size()) << what << " data set " << k;
  if (!sim.empty()) {
    EXPECT_EQ(std::memcmp(sim.data(), thr.data(), sim.size() * sizeof(T)), 0)
        << what << " data set " << k;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FFT-Hist
// ---------------------------------------------------------------------------

namespace {

std::vector<std::vector<std::int64_t>> run_ffthist(
    const MachineConfig& mcfg, const std::vector<ap::StreamModule>& modules,
    int writer_phys = 0) {
  ap::FftHistConfig cfg;
  cfg.n = 16;
  cfg.bins = 8;
  cfg.num_sets = 6;
  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);
  ap::run_stream_pipeline<ap::Complex>(mcfg, stages, modules, cfg.num_sets, 0.0,
                                       funnel_sink(sink, writer_phys));
  return sink;
}

}  // namespace

TEST(ExecParity, FftHistDataParallel) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const std::vector<ap::StreamModule> dp = {{0, 2, 4, 1}};
  const auto sim = run_ffthist(backend_cfg(4, ex::BackendKind::Sim), dp);
  const auto thr = run_ffthist(backend_cfg(4, ex::BackendKind::Threads), dp);
  ASSERT_EQ(sim.size(), thr.size());
  for (std::size_t k = 0; k < sim.size(); ++k) {
    expect_bit_identical(sim[k], thr[k], "ffthist/dp", static_cast<int>(k));
  }
}

TEST(ExecParity, FftHistDataParallelProcBothTransports) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const std::vector<ap::StreamModule> dp = {{0, 2, 4, 1}};
  const auto sim = run_ffthist(backend_cfg(4, ex::BackendKind::Sim), dp);
  const auto shm = run_ffthist(proc_cfg(4, ex::TransportKind::Shm), dp);
  const auto tcp = run_ffthist(proc_cfg(4, ex::TransportKind::Tcp), dp);
  ASSERT_EQ(sim.size(), shm.size());
  ASSERT_EQ(sim.size(), tcp.size());
  for (std::size_t k = 0; k < sim.size(); ++k) {
    ASSERT_FALSE(sim[k].empty()) << "sim sink empty at " << k;
    expect_bit_identical(sim[k], shm[k], "ffthist/dp/proc-shm", static_cast<int>(k));
    expect_bit_identical(sim[k], tcp[k], "ffthist/dp/proc-tcp", static_cast<int>(k));
  }
}

TEST(ExecParity, FftHistThreeStagePipeline) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const std::vector<ap::StreamModule> pipe = {{0, 0, 2, 1}, {1, 1, 2, 1}, {2, 2, 2, 1}};
  const auto sim = run_ffthist(backend_cfg(6, ex::BackendKind::Sim), pipe);
  const auto thr = run_ffthist(backend_cfg(6, ex::BackendKind::Threads), pipe);
  ASSERT_EQ(sim.size(), thr.size());
  for (std::size_t k = 0; k < sim.size(); ++k) {
    expect_bit_identical(sim[k], thr[k], "ffthist/pipe", static_cast<int>(k));
  }
}

TEST(ExecParity, FftHistThreeStagePipelineProcBothTransports) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  // The histogram module runs on phys {4,5}; its virtual rank 0 (phys 4, a
  // forked child on the proc backend) records the sink, so the results are
  // funneled to phys 0 by the stream epilogue. The same funneled program
  // runs on the simulator to keep the comparison exact.
  const std::vector<ap::StreamModule> pipe = {{0, 0, 2, 1}, {1, 1, 2, 1}, {2, 2, 2, 1}};
  constexpr int kWriter = 4;
  const auto sim = run_ffthist(backend_cfg(6, ex::BackendKind::Sim), pipe, kWriter);
  const auto shm = run_ffthist(proc_cfg(6, ex::TransportKind::Shm), pipe, kWriter);
  const auto tcp = run_ffthist(proc_cfg(6, ex::TransportKind::Tcp), pipe, kWriter);
  ASSERT_EQ(sim.size(), shm.size());
  ASSERT_EQ(sim.size(), tcp.size());
  for (std::size_t k = 0; k < sim.size(); ++k) {
    ASSERT_FALSE(sim[k].empty()) << "sim sink empty at " << k;
    expect_bit_identical(sim[k], shm[k], "ffthist/pipe/proc-shm", static_cast<int>(k));
    expect_bit_identical(sim[k], tcp[k], "ffthist/pipe/proc-tcp", static_cast<int>(k));
  }
}

// ---------------------------------------------------------------------------
// Radar
// ---------------------------------------------------------------------------

namespace {

std::vector<std::int64_t> run_radar(const ap::RadarConfig& cfg, const MachineConfig& mcfg) {
  std::vector<std::int64_t> sink;
  const auto stages = ap::radar_stages(cfg, &sink);
  const int last = static_cast<int>(stages.size()) - 1;
  ap::run_stream_pipeline<ap::Complex>(mcfg, stages, {{0, last, 4, 1}}, cfg.num_sets);
  return sink;
}

}  // namespace

TEST(ExecParity, RadarDetections) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  ap::RadarConfig cfg;
  cfg.samples = 64;
  cfg.channels = 8;
  cfg.num_sets = 5;
  const auto sim = run_radar(cfg, backend_cfg(4, ex::BackendKind::Sim));
  const auto thr = run_radar(cfg, backend_cfg(4, ex::BackendKind::Threads));
  expect_bit_identical(sim, thr, "radar/detections", -1);
  for (int k = 0; k < cfg.num_sets; ++k) {
    EXPECT_EQ(sim[static_cast<std::size_t>(k)], ap::radar_reference(cfg, k))
        << "dwell " << k;
  }
}

TEST(ExecParity, RadarDetectionsProcBothTransports) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  ap::RadarConfig cfg;
  cfg.samples = 64;
  cfg.channels = 8;
  cfg.num_sets = 5;
  const auto sim = run_radar(cfg, backend_cfg(4, ex::BackendKind::Sim));
  const auto shm = run_radar(cfg, proc_cfg(4, ex::TransportKind::Shm));
  const auto tcp = run_radar(cfg, proc_cfg(4, ex::TransportKind::Tcp));
  expect_bit_identical(sim, shm, "radar/detections/proc-shm", -1);
  expect_bit_identical(sim, tcp, "radar/detections/proc-tcp", -1);
}

// ---------------------------------------------------------------------------
// Quicksort (dynamically nested task regions)
// ---------------------------------------------------------------------------

TEST(ExecParity, QuicksortNestedTaskRegions) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const auto input = ap::qsort_input(513, 42);
  const auto sim =
      ap::run_parallel_qsort(backend_cfg(4, ex::BackendKind::Sim, 512 * 1024), input);
  const auto thr = ap::run_parallel_qsort(backend_cfg(4, ex::BackendKind::Threads), input);
  expect_bit_identical(sim.sorted, thr.sorted, "qsort/sorted", -1);
  auto expect = input;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(thr.sorted, expect);
}

TEST(ExecParity, QuicksortProcBothTransports) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  // qsort gathers the sorted array to phys 0 — the parent process on the
  // proc backend — so the result survives the fork boundary directly.
  const auto input = ap::qsort_input(513, 42);
  const auto sim =
      ap::run_parallel_qsort(backend_cfg(4, ex::BackendKind::Sim, 512 * 1024), input);
  const auto shm = ap::run_parallel_qsort(proc_cfg(4, ex::TransportKind::Shm), input);
  const auto tcp = ap::run_parallel_qsort(proc_cfg(4, ex::TransportKind::Tcp), input);
  expect_bit_identical(sim.sorted, shm.sorted, "qsort/sorted/proc-shm", -1);
  expect_bit_identical(sim.sorted, tcp.sorted, "qsort/sorted/proc-tcp", -1);
  auto expect = input;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(shm.sorted, expect);
}

// ---------------------------------------------------------------------------
// Synthetic floating-point stream pipeline
// ---------------------------------------------------------------------------

namespace {

// Two modules: "gen" fills a block-distributed array with transcendental
// values (owner-computes, so each element is produced by exactly one
// processor on either backend), "collect" receives it replicated — the
// inter-module assign() is a real redistribution — transforms it, and
// virtual rank 0 records the full array per data set.
std::vector<std::vector<double>> run_fp_pipeline(MachineConfig mcfg, bool metrics = true) {
  constexpr std::int64_t kN = 64;
  constexpr int kSets = 6;
  std::vector<std::vector<double>> sink(kSets);

  std::vector<ap::PipelineStage<double>> stages(2);
  stages[0].name = "gen";
  stages[0].in_layout = [](const fxpar::ProcessorGroup& g) {
    return ds::Layout(g, {kN}, {ds::DimDist::block()});
  };
  stages[0].out_layout = stages[0].in_layout;
  stages[0].run = [](mx::Context& ctx, ds::DistArray<double>& /*in*/,
                     ds::DistArray<double>& out, int k) {
    out.fill([k](std::span<const std::int64_t> gi) {
      const double x = static_cast<double>(gi[0]) * 0.1 + static_cast<double>(k);
      return std::sin(x) * std::sqrt(x + 1.0) + std::cos(x * 0.5);
    });
    ctx.charge(1e-6 * static_cast<double>(kN));
  };

  stages[1].name = "collect";
  stages[1].in_layout = [](const fxpar::ProcessorGroup& g) {
    return ds::Layout(g, {kN}, {ds::DimDist::collapsed()});
  };
  stages[1].out_layout = stages[1].in_layout;
  stages[1].run = [&sink](mx::Context& ctx, ds::DistArray<double>& in,
                          ds::DistArray<double>& out, int k) {
    const auto src = in.local();
    const auto dst = out.local();
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i] = src[i] * 1.5 + 0.25;
    }
    ctx.charge(1e-6 * static_cast<double>(kN));
    if (in.layout().group().virtual_of(ctx.phys_rank()) == 0) {
      sink[static_cast<std::size_t>(k)].assign(dst.begin(), dst.end());
    }
  };

  mcfg.metrics = metrics;
  // The collect module runs on phys {2,3}: its virtual rank 0 (phys 2)
  // records the sink, so the epilogue funnels the rows to phys 0 for the
  // process backend's sake (a no-op data-wise on sim/threads).
  ap::run_stream_pipeline<double>(mcfg, stages, {{0, 0, 2, 1}, {1, 1, 2, 1}}, kSets, 0.0,
                                  funnel_sink(sink, /*writer_phys=*/2));
  return sink;
}

}  // namespace

TEST(ExecParity, FloatingPointStreamPipelineBitIdentical) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const auto sim = run_fp_pipeline(backend_cfg(4, ex::BackendKind::Sim));
  const auto thr = run_fp_pipeline(backend_cfg(4, ex::BackendKind::Threads));
  ASSERT_EQ(sim.size(), thr.size());
  for (std::size_t k = 0; k < sim.size(); ++k) {
    ASSERT_FALSE(sim[k].empty()) << "sim sink empty at " << k;
    expect_bit_identical(sim[k], thr[k], "fp-pipeline", static_cast<int>(k));
  }
}

TEST(ExecParity, FloatingPointStreamPipelineProcBothTransports) {
  // The deterministic-reduction contract must hold across the fork
  // boundary too: transcendental outputs and the FP assign/redistribute
  // path are compared at the bit level against the simulator on both
  // process-backend transports.
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const auto sim = run_fp_pipeline(backend_cfg(4, ex::BackendKind::Sim));
  const auto shm = run_fp_pipeline(proc_cfg(4, ex::TransportKind::Shm));
  const auto tcp = run_fp_pipeline(proc_cfg(4, ex::TransportKind::Tcp));
  ASSERT_EQ(sim.size(), shm.size());
  ASSERT_EQ(sim.size(), tcp.size());
  for (std::size_t k = 0; k < sim.size(); ++k) {
    ASSERT_FALSE(sim[k].empty()) << "sim sink empty at " << k;
    expect_bit_identical(sim[k], shm[k], "fp-pipeline/proc-shm", static_cast<int>(k));
    expect_bit_identical(sim[k], tcp[k], "fp-pipeline/proc-tcp", static_cast<int>(k));
  }
}

TEST(ExecParity, MetricsOnAndOffProduceBitIdenticalResults) {
  // Metrics instrumentation must be observation-only: disabling it cannot
  // change any computed value on either backend.
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const auto sim_on = run_fp_pipeline(backend_cfg(4, ex::BackendKind::Sim), /*metrics=*/true);
  const auto sim_off =
      run_fp_pipeline(backend_cfg(4, ex::BackendKind::Sim), /*metrics=*/false);
  const auto thr_on =
      run_fp_pipeline(backend_cfg(4, ex::BackendKind::Threads), /*metrics=*/true);
  const auto thr_off =
      run_fp_pipeline(backend_cfg(4, ex::BackendKind::Threads), /*metrics=*/false);
  ASSERT_EQ(sim_on.size(), sim_off.size());
  ASSERT_EQ(thr_on.size(), thr_off.size());
  for (std::size_t k = 0; k < sim_on.size(); ++k) {
    ASSERT_FALSE(sim_on[k].empty()) << "sim sink empty at " << k;
    expect_bit_identical(sim_on[k], sim_off[k], "metrics-parity/sim",
                         static_cast<int>(k));
    expect_bit_identical(thr_on[k], thr_off[k], "metrics-parity/threads",
                         static_cast<int>(k));
    expect_bit_identical(sim_on[k], thr_on[k], "metrics-parity/cross",
                         static_cast<int>(k));
  }
}
