// Tests for the simulated machine: messaging costs, subset barriers,
// sequential I/O, and the Context group stack.
#include <gtest/gtest.h>

#include "comm/serialize.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"

namespace mx = fxpar::machine;
namespace pg = fxpar::pgroup;
namespace cm = fxpar::comm;

namespace {

mx::MachineConfig test_config(int p) {
  mx::MachineConfig c;
  c.num_procs = p;
  c.send_overhead = 1.0;  // easy-to-check round numbers
  c.recv_overhead = 2.0;
  c.latency = 10.0;
  c.byte_time = 0.5;
  c.barrier_base = 1.0;
  c.barrier_stage = 1.0;
  c.io_latency = 100.0;
  c.io_byte_time = 1.0;
  c.stack_bytes = 128 * 1024;
  return c;
}

}  // namespace

TEST(Machine, MessageTimingFollowsModel) {
  mx::Machine m(test_config(2));
  double recv_done = -1.0;
  m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      // send 4 bytes: sender busy = 1 + 4*0.5 = 3; arrival = 3 + 10 = 13.
      ctx.send_phys(1, 7, mx::Payload(4));
      EXPECT_DOUBLE_EQ(ctx.now(), 3.0);
    } else {
      mx::Payload p = ctx.recv_phys(0, 7);
      EXPECT_EQ(p.size(), 4u);
      // receiver waits to arrival 13, then +2 recv overhead.
      EXPECT_DOUBLE_EQ(ctx.now(), 15.0);
      recv_done = ctx.now();
    }
  });
  EXPECT_DOUBLE_EQ(recv_done, 15.0);
}

TEST(Machine, LateReceiverPaysNoWait) {
  mx::Machine m(test_config(2));
  m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 1, mx::Payload(2));
    } else {
      ctx.charge(100.0);  // message (arrival 12) is long since there
      ctx.recv_phys(0, 1);
      EXPECT_DOUBLE_EQ(ctx.now(), 102.0);  // only recv overhead added
    }
  });
}

TEST(Machine, FifoPerSenderAndTag) {
  mx::Machine m(test_config(2));
  m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 5, cm::pack_value<int>(111));
      ctx.send_phys(1, 5, cm::pack_value<int>(222));
    } else {
      EXPECT_EQ(cm::unpack_value<int>(ctx.recv_phys(0, 5)), 111);
      EXPECT_EQ(cm::unpack_value<int>(ctx.recv_phys(0, 5)), 222);
    }
  });
}

TEST(Machine, TagsKeepStreamsSeparate) {
  mx::Machine m(test_config(2));
  m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 1, cm::pack_value<int>(1));
      ctx.send_phys(1, 2, cm::pack_value<int>(2));
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(cm::unpack_value<int>(ctx.recv_phys(0, 2)), 2);
      EXPECT_EQ(cm::unpack_value<int>(ctx.recv_phys(0, 1)), 1);
    }
  });
}

TEST(Machine, BarrierReleasesAtMaxArrivalPlusCost) {
  auto cfg = test_config(4);
  mx::Machine m(cfg);
  m.run([&](mx::Context& ctx) {
    ctx.charge(static_cast<double>(ctx.phys_rank()));  // arrive at t = rank
    ctx.barrier();
    // release = max arrival (3) + base 1 + stage 1 * ceil(log2 4)=2 -> 6.
    EXPECT_DOUBLE_EQ(ctx.now(), 6.0);
  });
}

TEST(Machine, SubsetBarrierOnlyAffectsMembers) {
  mx::Machine m(test_config(4));
  const pg::ProcessorGroup sub({0, 1});
  m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() <= 1) {
      ctx.charge(ctx.phys_rank() == 0 ? 1.0 : 5.0);
      ctx.barrier(sub);
      // release = 5 + 1 + 1*1 = 7
      EXPECT_DOUBLE_EQ(ctx.now(), 7.0);
    } else {
      // Non-members never see the barrier.
      EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
    }
  });
}

TEST(Machine, BarrierOnNonMemberThrows) {
  mx::Machine m(test_config(2));
  const pg::ProcessorGroup sub({0});
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 1) ctx.barrier(sub);
  }),
               std::logic_error);
}

TEST(Machine, SingleProcBarrierIsCheap) {
  mx::Machine m(test_config(1));
  m.run([&](mx::Context& ctx) {
    ctx.barrier();
    EXPECT_DOUBLE_EQ(ctx.now(), 1.0);  // barrier_base only
  });
}

TEST(Machine, RepeatedBarriersMatchGenerations) {
  mx::Machine m(test_config(3));
  m.run([&](mx::Context& ctx) {
    for (int k = 0; k < 5; ++k) {
      ctx.charge(1.0);
      ctx.barrier();
    }
  });
  // No deadlock and all clocks equal at the end is the assertion.
}

TEST(Machine, SequentialIoSerializesAcrossProcs) {
  mx::Machine m(test_config(2));
  double t0 = -1, t1 = -1;
  m.run([&](mx::Context& ctx) {
    ctx.io(10);  // 100 + 10*1 = 110 per op
    (ctx.phys_rank() == 0 ? t0 : t1) = ctx.now();
  });
  // One proc finishes at 110, the other waits for the device: 220.
  EXPECT_DOUBLE_EQ(std::min(t0, t1), 110.0);
  EXPECT_DOUBLE_EQ(std::max(t0, t1), 220.0);
}

TEST(Machine, RunResultAggregatesStats) {
  mx::Machine m(test_config(2));
  auto res = m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 3, mx::Payload(8));
    } else {
      ctx.recv_phys(0, 3);
    }
    ctx.barrier();
  });
  EXPECT_EQ(res.messages, 1u);
  EXPECT_EQ(res.bytes, 8u);
  EXPECT_EQ(res.barriers, 2u);  // both procs count their barrier call
  EXPECT_GT(res.finish_time, 0.0);
  EXPECT_EQ(res.clocks.size(), 2u);
}

TEST(Machine, UnmatchedRecvDeadlocks) {
  mx::Machine m(test_config(2));
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) ctx.recv_phys(1, 9);
  }),
               fxpar::runtime::DeadlockError);
}

TEST(Context, GroupStackPushPop) {
  mx::Machine m(test_config(4));
  const pg::ProcessorGroup sub({1, 2});
  m.run([&](mx::Context& ctx) {
    EXPECT_EQ(ctx.nprocs(), 4);
    EXPECT_EQ(ctx.vrank(), ctx.phys_rank());
    if (sub.contains(ctx.phys_rank())) {
      ctx.push_group(sub);
      EXPECT_EQ(ctx.nprocs(), 2);
      EXPECT_EQ(ctx.vrank(), ctx.phys_rank() - 1);
      ctx.pop_group();
      EXPECT_EQ(ctx.nprocs(), 4);
    } else {
      EXPECT_THROW(ctx.push_group(sub), std::logic_error);
    }
    EXPECT_THROW(ctx.pop_group(), std::logic_error);
  });
}

TEST(Context, ChargeHelpersScaleByConfig) {
  auto cfg = test_config(1);
  cfg.flop_time = 2.0;
  cfg.int_op_time = 3.0;
  cfg.mem_byte_time = 0.25;
  mx::Machine m(cfg);
  m.run([&](mx::Context& ctx) {
    ctx.charge_flops(2);
    EXPECT_DOUBLE_EQ(ctx.now(), 4.0);
    ctx.charge_int_ops(1);
    EXPECT_DOUBLE_EQ(ctx.now(), 7.0);
    ctx.charge_mem_bytes(8);
    EXPECT_DOUBLE_EQ(ctx.now(), 9.0);
  });
}

TEST(Context, SendRecvUseVirtualRanksOfCurrentGroup) {
  mx::Machine m(test_config(4));
  const pg::ProcessorGroup sub({2, 3});
  m.run([&](mx::Context& ctx) {
    if (!sub.contains(ctx.phys_rank())) return;
    ctx.push_group(sub);
    if (ctx.vrank() == 0) {
      ctx.send(1, 11, cm::pack_value<int>(99));  // virtual 1 == physical 3
    } else {
      EXPECT_EQ(cm::unpack_value<int>(ctx.recv(0, 11)), 99);
    }
    ctx.pop_group();
  });
}

TEST(Machine, CollectiveTagsAdvancePerGroup) {
  mx::Machine m(test_config(2));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(2);
    const auto t1 = ctx.collective_tag(g);
    const auto t2 = ctx.collective_tag(g);
    EXPECT_NE(t1, t2);
    EXPECT_TRUE(t1 & (1ull << 63));
  });
}

TEST(Machine, TrafficMatrixRecordsPerPairBytes) {
  auto cfg = test_config(3);
  cfg.record_traffic = true;
  mx::Machine m(cfg);
  auto res = m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 1, mx::Payload(10));
      ctx.send_phys(2, 1, mx::Payload(20));
      ctx.send_phys(2, 2, mx::Payload(5));
    } else {
      ctx.recv_phys(0, 1);
      if (ctx.phys_rank() == 2) ctx.recv_phys(0, 2);
    }
  });
  EXPECT_EQ(res.traffic_between(0, 1), 10u);
  EXPECT_EQ(res.traffic_between(0, 2), 25u);
  EXPECT_EQ(res.traffic_between(1, 0), 0u);
  EXPECT_EQ(res.traffic_between(9, 0), 0u);  // out of range -> 0
}

TEST(Machine, TrafficMatrixOffByDefault) {
  mx::Machine m(test_config(2));
  auto res = m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 1, mx::Payload(8));
    } else {
      ctx.recv_phys(0, 1);
    }
  });
  EXPECT_TRUE(res.traffic.empty());
  EXPECT_EQ(res.traffic_between(0, 1), 0u);
}
