// Tests for the Airshed application: numerical equivalence of the
// sequential reference, the data parallel version, and the task parallel
// version, plus the I/O-overlap speedup property behind Figure 6.
#include <gtest/gtest.h>

#include "apps/airshed.hpp"

namespace ap = fxpar::apps;
using fxpar::MachineConfig;

namespace {

MachineConfig paragon(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

ap::AirshedConfig small_cfg() {
  ap::AirshedConfig c;
  c.layers = 2;
  c.grid_points = 40;
  c.species = 5;
  c.hours = 3;
  c.base_steps = 2;
  return c;
}

}  // namespace

TEST(Airshed, DataParallelMatchesReference) {
  const auto cfg = small_cfg();
  const double ref = ap::airshed_reference_checksum(cfg);
  for (int p : {1, 2, 4, 7}) {
    const auto res = ap::run_airshed_dp(paragon(p), cfg);
    EXPECT_DOUBLE_EQ(res.checksum, ref) << "p=" << p;
  }
}

TEST(Airshed, TaskParallelMatchesReference) {
  const auto cfg = small_cfg();
  const double ref = ap::airshed_reference_checksum(cfg);
  for (int p : {3, 4, 8}) {
    const auto res = ap::run_airshed_taskpar(paragon(p), cfg);
    EXPECT_DOUBLE_EQ(res.checksum, ref) << "p=" << p;
  }
}

TEST(Airshed, TaskParRequiresThreeProcs) {
  EXPECT_THROW(ap::run_airshed_taskpar(paragon(2), small_cfg()), std::invalid_argument);
}

TEST(Airshed, StepsVaryByHour) {
  const ap::AirshedConfig cfg = small_cfg();
  EXPECT_EQ(cfg.steps(0), cfg.base_steps);
  EXPECT_EQ(cfg.steps(1), cfg.base_steps + 1);
  EXPECT_EQ(cfg.steps(3), cfg.base_steps);
}

TEST(Airshed, SequentialPhasesBottleneckDataParallelVersion) {
  // At scale, the DP version's I/O phases dominate and the task parallel
  // version that overlaps them wins (the Figure 6 effect).
  ap::AirshedConfig cfg = small_cfg();
  cfg.grid_points = 200;
  cfg.hours = 4;
  const auto dp = ap::run_airshed_dp(paragon(32), cfg);
  const auto tp = ap::run_airshed_taskpar(paragon(32), cfg);
  EXPECT_LT(tp.makespan, dp.makespan);
}

TEST(Airshed, TaskParallelGainGrowsWithProcessorCount) {
  ap::AirshedConfig cfg = small_cfg();
  cfg.grid_points = 200;
  cfg.hours = 4;
  const auto dp8 = ap::run_airshed_dp(paragon(8), cfg);
  const auto tp8 = ap::run_airshed_taskpar(paragon(8), cfg);
  const auto dp32 = ap::run_airshed_dp(paragon(32), cfg);
  const auto tp32 = ap::run_airshed_taskpar(paragon(32), cfg);
  const double gain8 = dp8.makespan / tp8.makespan;
  const double gain32 = dp32.makespan / tp32.makespan;
  EXPECT_GT(gain32, gain8);
}

TEST(Airshed, IoDeviceIsActuallySequential) {
  // Two hours of I/O on the DP version must serialize on the device: the
  // makespan strictly exceeds the pure compute scaling would suggest.
  ap::AirshedConfig cfg = small_cfg();
  const auto a = ap::run_airshed_dp(paragon(4), cfg);
  EXPECT_GT(a.machine_result.finish_time, 0.0);
  // Smoke: message traffic happened (scatter/gather).
  EXPECT_GT(a.machine_result.messages, 0u);
}
