// End-to-end tests for the radar and multibaseline stereo pipelines.
#include <gtest/gtest.h>

#include "apps/radar.hpp"
#include "apps/stereo.hpp"

namespace ap = fxpar::apps;
namespace sched = fxpar::sched;
using fxpar::MachineConfig;

namespace {

MachineConfig paragon(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

ap::RadarConfig small_radar() {
  ap::RadarConfig c;
  c.samples = 64;
  c.channels = 6;
  c.num_sets = 5;
  return c;
}

ap::StereoConfig small_stereo() {
  ap::StereoConfig c;
  c.height = 24;
  c.width = 16;
  c.disparities = 4;
  c.num_sets = 4;
  return c;
}

}  // namespace

TEST(Radar, ReferenceDetectsTones) {
  const auto cfg = small_radar();
  const auto det = ap::radar_reference(cfg, 0);
  // One strong tone per channel must be detected; clutter must not swamp.
  EXPECT_GE(det, cfg.channels);
  EXPECT_LT(det, cfg.channels * 4);
}

TEST(Radar, DataParallelMatchesReference) {
  const auto cfg = small_radar();
  std::vector<std::int64_t> sink;
  const auto stages = ap::radar_stages(cfg, &sink);
  ap::run_stream_pipeline<ap::Complex>(paragon(4), stages, {{0, 3, 4, 1}}, cfg.num_sets);
  for (int k = 0; k < cfg.num_sets; ++k) {
    EXPECT_EQ(sink[static_cast<std::size_t>(k)], ap::radar_reference(cfg, k)) << "dwell " << k;
  }
}

TEST(Radar, PipelinedAndReplicatedMatchReference) {
  const auto cfg = small_radar();
  std::vector<std::int64_t> sink;
  const auto stages = ap::radar_stages(cfg, &sink);
  // cturn | rffts+scale | thresh, middle module replicated.
  ap::run_stream_pipeline<ap::Complex>(paragon(10), stages,
                                       {{0, 0, 2, 1}, {1, 2, 3, 2}, {3, 3, 2, 1}},
                                       cfg.num_sets);
  for (int k = 0; k < cfg.num_sets; ++k) {
    EXPECT_EQ(sink[static_cast<std::size_t>(k)], ap::radar_reference(cfg, k)) << "dwell " << k;
  }
}

TEST(Radar, ParallelismCapLimitsDataParallelScaling) {
  // With more processors than channels, the FFT stage stops speeding up:
  // extra processors own no channels (the paper's structural bottleneck).
  auto cfg = small_radar();
  cfg.num_sets = 6;
  const auto stages = ap::radar_stages(cfg);
  const auto at_cap = ap::run_stream_pipeline<ap::Complex>(
      paragon(static_cast<int>(cfg.channels)), stages,
      {{0, 3, static_cast<int>(cfg.channels), 1}}, cfg.num_sets);
  const auto beyond = ap::run_stream_pipeline<ap::Complex>(
      paragon(static_cast<int>(cfg.channels) * 2), stages,
      {{0, 3, static_cast<int>(cfg.channels) * 2, 1}}, cfg.num_sets);
  // Throughput gain from doubling processors past the cap is marginal.
  EXPECT_LT(beyond.steady_throughput(), 1.3 * at_cap.steady_throughput());
  // Replication, in contrast, nearly doubles it.
  const auto repl = ap::run_stream_pipeline<ap::Complex>(
      paragon(static_cast<int>(cfg.channels) * 2), stages,
      {{0, 3, static_cast<int>(cfg.channels), 2}}, cfg.num_sets);
  EXPECT_GT(repl.steady_throughput(), 1.5 * at_cap.steady_throughput());
}

TEST(Radar, ModelStageTimesSaturateAtChannelCap) {
  const auto cfg = small_radar();
  const auto model = ap::radar_model(paragon(64), cfg);
  const double t6 = model.stage_time(1, static_cast<int>(cfg.channels));
  const double t12 = model.stage_time(1, static_cast<int>(cfg.channels) * 2);
  EXPECT_DOUBLE_EQ(t6, t12);
}

TEST(Stereo, ReferenceRecoverOnTrueDisparities) {
  const auto cfg = small_stereo();
  const auto sum = ap::stereo_reference(cfg, 0);
  // True disparities are in [1,4]; the mean recovered disparity must land
  // inside that band.
  const double mean = static_cast<double>(sum) / static_cast<double>(cfg.height * cfg.width);
  EXPECT_GT(mean, 0.5);
  EXPECT_LT(mean, 4.1);
}

TEST(Stereo, DataParallelMatchesReference) {
  const auto cfg = small_stereo();
  std::vector<std::int64_t> sink;
  const auto stages = ap::stereo_stages(cfg, &sink);
  ap::run_stream_pipeline<float>(paragon(4), stages, {{0, 3, 4, 1}}, cfg.num_sets);
  for (int k = 0; k < cfg.num_sets; ++k) {
    EXPECT_EQ(sink[static_cast<std::size_t>(k)], ap::stereo_reference(cfg, k)) << "frame " << k;
  }
}

TEST(Stereo, SingleProcessorMatchesReference) {
  const auto cfg = small_stereo();
  std::vector<std::int64_t> sink;
  const auto stages = ap::stereo_stages(cfg, &sink);
  ap::run_stream_pipeline<float>(paragon(1), stages, {{0, 3, 1, 1}}, cfg.num_sets);
  for (int k = 0; k < cfg.num_sets; ++k) {
    EXPECT_EQ(sink[static_cast<std::size_t>(k)], ap::stereo_reference(cfg, k));
  }
}

TEST(Stereo, HaloExchangeCorrectAcrossManyProcCounts) {
  // The windowed-sum stage needs ghost rows; sweep processor counts so
  // blocks smaller than the halo (1-row blocks with a 2-row halo) are
  // exercised too.
  const auto cfg = small_stereo();
  for (int p : {2, 3, 5, 8, 16, 24}) {
    std::vector<std::int64_t> sink;
    const auto stages = ap::stereo_stages(cfg, &sink);
    ap::run_stream_pipeline<float>(paragon(p), stages, {{0, 3, p, 1}}, 2);
    for (int k = 0; k < 2; ++k) {
      EXPECT_EQ(sink[static_cast<std::size_t>(k)], ap::stereo_reference(cfg, k))
          << "p=" << p << " frame " << k;
    }
  }
}

TEST(Stereo, PipelinedMappingMatchesReference) {
  const auto cfg = small_stereo();
  std::vector<std::int64_t> sink;
  const auto stages = ap::stereo_stages(cfg, &sink);
  ap::run_stream_pipeline<float>(paragon(9), stages,
                                 {{0, 1, 3, 1}, {2, 2, 2, 2}, {3, 3, 2, 1}}, cfg.num_sets);
  for (int k = 0; k < cfg.num_sets; ++k) {
    EXPECT_EQ(sink[static_cast<std::size_t>(k)], ap::stereo_reference(cfg, k)) << "frame " << k;
  }
}

TEST(Stereo, ModelAndMachineAgreeOnReplicationGain) {
  auto cfg = small_stereo();
  cfg.num_sets = 8;
  const auto mcfg = paragon(8);
  const auto model = ap::stereo_model(mcfg, cfg);
  sched::PipelineMapping one;
  one.modules = {{0, 3, 4, 1}};
  sched::PipelineMapping two;
  two.modules = {{0, 3, 4, 2}};
  fxpar::sched::evaluate(model, one);
  fxpar::sched::evaluate(model, two);
  EXPECT_GT(two.throughput, 1.5 * one.throughput);

  const auto stages = ap::stereo_stages(cfg);
  const auto s1 = ap::run_stream_pipeline<float>(mcfg, stages, one.modules, cfg.num_sets);
  const auto s2 = ap::run_stream_pipeline<float>(mcfg, stages, two.modules, cfg.num_sets);
  EXPECT_GT(s2.steady_throughput(), 1.5 * s1.steady_throughput());
}
