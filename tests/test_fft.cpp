// Tests for the sequential FFT / histogram kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "apps/fft.hpp"

namespace ap = fxpar::apps;
using ap::Complex;

namespace {

std::vector<Complex> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<Complex> v(n);
  for (auto& z : v) z = Complex(d(rng), d(rng));
  return v;
}

double max_abs_diff(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> v(8, Complex(0, 0));
  v[0] = Complex(1, 0);
  ap::fft_inplace(v);
  for (const auto& z : v) {
    EXPECT_NEAR(z.real(), 1.0, 1e-12);
    EXPECT_NEAR(z.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantGivesDelta) {
  std::vector<Complex> v(16, Complex(1, 0));
  ap::fft_inplace(v);
  EXPECT_NEAR(v[0].real(), 16.0, 1e-12);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_NEAR(std::abs(v[i]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  constexpr std::size_t kN = 64;
  constexpr int kTone = 5;
  std::vector<Complex> v(kN);
  for (std::size_t t = 0; t < kN; ++t) {
    const double ang = 2.0 * M_PI * kTone * static_cast<double>(t) / kN;
    v[t] = Complex(std::cos(ang), std::sin(ang));
  }
  ap::fft_inplace(v);
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(std::abs(v[k]), k == kTone ? 64.0 : 0.0, 1e-9) << "bin " << k;
  }
}

class FftVsDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsDft, MatchesNaiveDft) {
  const auto sig = random_signal(GetParam(), 42);
  auto fast = sig;
  ap::fft_inplace(fast);
  const auto slow = ap::naive_dft(sig);
  EXPECT_LT(max_abs_diff(fast, slow), 1e-9);
}

TEST_P(FftVsDft, InverseRoundTrips) {
  const auto sig = random_signal(GetParam(), 7);
  auto v = sig;
  ap::fft_inplace(v, false);
  ap::fft_inplace(v, true);
  EXPECT_LT(max_abs_diff(v, sig), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FftVsDft, ::testing::Values(1, 2, 4, 8, 32, 128, 256));

TEST(Fft, NonPow2Rejected) {
  std::vector<Complex> v(12);
  EXPECT_THROW(ap::fft_inplace(v), std::invalid_argument);
}

TEST(Fft, StridedMatchesContiguous) {
  constexpr std::size_t kRows = 8, kCols = 4;
  auto mat = random_signal(kRows * kCols, 3);
  auto expect = mat;
  // Column FFT via explicit copy.
  for (std::size_t c = 0; c < kCols; ++c) {
    std::vector<Complex> col(kRows);
    for (std::size_t r = 0; r < kRows; ++r) col[r] = expect[r * kCols + c];
    ap::fft_inplace(col);
    for (std::size_t r = 0; r < kRows; ++r) expect[r * kCols + c] = col[r];
  }
  for (std::size_t c = 0; c < kCols; ++c) {
    ap::fft_strided(mat, c, kCols, kRows);
  }
  EXPECT_LT(max_abs_diff(mat, expect), 1e-12);
}

TEST(Fft, StridedBoundsChecked) {
  std::vector<Complex> v(8);
  EXPECT_THROW(ap::fft_strided(v, 0, 0, 4), std::invalid_argument);
  EXPECT_THROW(ap::fft_strided(v, 4, 2, 4), std::out_of_range);
}

TEST(Fft, FlopModelScalesNLogN) {
  EXPECT_DOUBLE_EQ(ap::fft_flops(1), 0.0);
  EXPECT_DOUBLE_EQ(ap::fft_flops(8), 5.0 * 8 * 3);
  EXPECT_GT(ap::fft_flops(1024), ap::fft_flops(512) * 2.0);
}

TEST(Histogram, CountsFallInRightBuckets) {
  std::vector<Complex> v{{0.1, 0.0}, {0.9, 0.0}, {1.9, 0.0}, {5.0, 0.0}};
  const auto h = ap::magnitude_histogram(v, 2, 2.0);
  // bins: [0,1) and [1,2); 5.0 clamps into the last bin.
  EXPECT_EQ(h, (std::vector<std::int64_t>{2, 2}));
}

TEST(Histogram, TotalAlwaysMatchesInput) {
  const auto sig = random_signal(1000, 11);
  const auto h = ap::magnitude_histogram(sig, 16, 1.5);
  std::int64_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, 1000);
}

TEST(Histogram, Errors) {
  std::vector<Complex> v(4);
  EXPECT_THROW(ap::magnitude_histogram(v, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(ap::magnitude_histogram(v, 4, 0.0), std::invalid_argument);
}

TEST(IsPow2, Basics) {
  EXPECT_TRUE(ap::is_pow2(1));
  EXPECT_TRUE(ap::is_pow2(1024));
  EXPECT_FALSE(ap::is_pow2(0));
  EXPECT_FALSE(ap::is_pow2(-8));
  EXPECT_FALSE(ap::is_pow2(12));
}
