// Unit and property tests for processor groups, partitions, and grids.
#include <gtest/gtest.h>

#include <numeric>

#include "pgroup/grid.hpp"
#include "pgroup/group.hpp"
#include "pgroup/partition.hpp"

namespace pg = fxpar::pgroup;

TEST(ProcessorGroup, IdentityMapsRankToItself) {
  const auto g = pg::ProcessorGroup::identity(8);
  EXPECT_EQ(g.size(), 8);
  for (int v = 0; v < 8; ++v) {
    EXPECT_EQ(g.physical(v), v);
    EXPECT_EQ(g.virtual_of(v), v);
    EXPECT_TRUE(g.contains(v));
  }
  EXPECT_FALSE(g.contains(8));
  EXPECT_EQ(g.virtual_of(100), -1);
}

TEST(ProcessorGroup, ExplicitMembersKeepOrder) {
  const pg::ProcessorGroup g({5, 2, 9});
  EXPECT_EQ(g.physical(0), 5);
  EXPECT_EQ(g.physical(1), 2);
  EXPECT_EQ(g.physical(2), 9);
  EXPECT_EQ(g.virtual_of(9), 2);
}

TEST(ProcessorGroup, RejectsBadMemberLists) {
  EXPECT_THROW(pg::ProcessorGroup(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(pg::ProcessorGroup({1, 1}), std::invalid_argument);
  EXPECT_THROW(pg::ProcessorGroup({-1}), std::invalid_argument);
}

TEST(ProcessorGroup, SliceSelectsSubrange) {
  const auto g = pg::ProcessorGroup::identity(10);
  const auto s = g.slice(3, 4);
  EXPECT_EQ(s.size(), 4);
  EXPECT_EQ(s.physical(0), 3);
  EXPECT_EQ(s.physical(3), 6);
  EXPECT_THROW(g.slice(8, 3), std::out_of_range);
  EXPECT_THROW(g.slice(-1, 2), std::out_of_range);
}

TEST(ProcessorGroup, KeyMatchesOnEqualContent) {
  const pg::ProcessorGroup a({1, 2, 3});
  const pg::ProcessorGroup b({1, 2, 3});
  const pg::ProcessorGroup c({3, 2, 1});
  EXPECT_EQ(a.key(), b.key());
  EXPECT_TRUE(a == b);
  EXPECT_NE(a.key(), c.key());  // order matters: virtual ranks differ
}

TEST(ProcessorGroup, PhysicalOutOfRangeThrows) {
  const auto g = pg::ProcessorGroup::identity(4);
  EXPECT_THROW(g.physical(4), std::out_of_range);
  EXPECT_THROW(g.physical(-1), std::out_of_range);
}

TEST(PartitionTemplate, BasicSplit) {
  pg::PartitionTemplate t({{"some", 5}, {"many", 11}});
  EXPECT_EQ(t.num_subgroups(), 2);
  EXPECT_EQ(t.total_size(), 16);
  EXPECT_EQ(t.index_of("some"), 0);
  EXPECT_EQ(t.index_of("many"), 1);
  EXPECT_EQ(t.offset_of(0), 0);
  EXPECT_EQ(t.offset_of(1), 5);
  EXPECT_THROW(t.index_of("nope"), std::invalid_argument);
}

TEST(PartitionTemplate, SubgroupOfVirtual) {
  pg::PartitionTemplate t({{"a", 2}, {"b", 3}, {"c", 1}});
  EXPECT_EQ(t.subgroup_of_virtual(0), 0);
  EXPECT_EQ(t.subgroup_of_virtual(1), 0);
  EXPECT_EQ(t.subgroup_of_virtual(2), 1);
  EXPECT_EQ(t.subgroup_of_virtual(4), 1);
  EXPECT_EQ(t.subgroup_of_virtual(5), 2);
  EXPECT_THROW(t.subgroup_of_virtual(6), std::out_of_range);
}

TEST(PartitionTemplate, MaterializeAgainstParent) {
  pg::PartitionTemplate t({{"a", 2}, {"b", 2}});
  const pg::ProcessorGroup parent({10, 11, 12, 13});
  const auto a = t.materialize(parent, 0);
  const auto b = t.materialize(parent, 1);
  EXPECT_EQ(a.members(), (std::vector<int>{10, 11}));
  EXPECT_EQ(b.members(), (std::vector<int>{12, 13}));
  const pg::ProcessorGroup wrong = pg::ProcessorGroup::identity(5);
  EXPECT_THROW(t.materialize(wrong, 0), std::invalid_argument);
}

TEST(PartitionTemplate, RejectsBadSpecs) {
  EXPECT_THROW(pg::PartitionTemplate(std::vector<pg::SubgroupSpec>{}), std::invalid_argument);
  EXPECT_THROW(pg::PartitionTemplate({{"a", 0}}), std::invalid_argument);
  EXPECT_THROW(pg::PartitionTemplate({{"a", 1}, {"a", 2}}), std::invalid_argument);
}

TEST(ProportionalSplit, ExactProportions) {
  const auto s = pg::proportional_split(10, {1.0, 1.0});
  EXPECT_EQ(s, (std::vector<int>{5, 5}));
  const auto t = pg::proportional_split(12, {1.0, 2.0});
  EXPECT_EQ(t, (std::vector<int>{4, 8}));
}

TEST(ProportionalSplit, EveryShareAtLeastOne) {
  const auto s = pg::proportional_split(4, {0.0, 1000.0, 0.0});
  EXPECT_EQ(static_cast<int>(s.size()), 3);
  for (int v : s) EXPECT_GE(v, 1);
  EXPECT_EQ(std::accumulate(s.begin(), s.end(), 0), 4);
}

TEST(ProportionalSplit, ZeroWeightsSplitEvenly) {
  const auto s = pg::proportional_split(7, {0.0, 0.0, 0.0});
  EXPECT_EQ(std::accumulate(s.begin(), s.end(), 0), 7);
  for (int v : s) EXPECT_GE(v, 2);
}

TEST(ProportionalSplit, Errors) {
  EXPECT_THROW(pg::proportional_split(1, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(pg::proportional_split(4, {}), std::invalid_argument);
  EXPECT_THROW(pg::proportional_split(4, {-1.0, 2.0}), std::invalid_argument);
}

// Property sweep: sums always match, shares track weights.
class ProportionalSplitSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProportionalSplitSweep, SumsToTotalAndOrdersByWeight) {
  const int total = GetParam();
  const std::vector<double> weights{1.0, 4.0, 2.0, 9.0};
  if (total < static_cast<int>(weights.size())) GTEST_SKIP();
  const auto s = pg::proportional_split(total, weights);
  EXPECT_EQ(std::accumulate(s.begin(), s.end(), 0), total);
  // Heaviest weight gets at least as many processors as the lightest.
  EXPECT_GE(s[3], s[0]);
}

INSTANTIATE_TEST_SUITE_P(Totals, ProportionalSplitSweep,
                         ::testing::Values(4, 5, 7, 8, 16, 33, 64, 100));

TEST(Grid, RowMajorCoordinates) {
  pg::Grid g({2, 3});
  EXPECT_EQ(g.size(), 6);
  EXPECT_EQ(g.coords_of(0), (std::vector<int>{0, 0}));
  EXPECT_EQ(g.coords_of(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(g.coords_of(3), (std::vector<int>{1, 0}));
  EXPECT_EQ(g.rank_at({1, 2}), 5);
  for (int v = 0; v < g.size(); ++v) EXPECT_EQ(g.rank_at(g.coords_of(v)), v);
}

TEST(Grid, BalancedFactorizations) {
  EXPECT_EQ(pg::Grid::balanced(64, 2).extents(), (std::vector<int>{8, 8}));
  EXPECT_EQ(pg::Grid::balanced(12, 2).extents(), (std::vector<int>{4, 3}));
  EXPECT_EQ(pg::Grid::balanced(7, 2).extents(), (std::vector<int>{7, 1}));
  EXPECT_EQ(pg::Grid::balanced(5, 1).extents(), (std::vector<int>{5}));
  EXPECT_EQ(pg::Grid::balanced(8, 3).size(), 8);
}

TEST(Grid, Errors) {
  EXPECT_THROW(pg::Grid({0}), std::invalid_argument);
  EXPECT_THROW(pg::Grid(std::vector<int>{}), std::invalid_argument);
  pg::Grid g({2, 2});
  EXPECT_THROW(g.coords_of(4), std::out_of_range);
  EXPECT_THROW(g.rank_at({2, 0}), std::out_of_range);
  EXPECT_THROW(g.rank_at({0}), std::invalid_argument);
}
