// Tests for the fxnet transport seam (src/net/): frame round-trips and
// per-source FIFO order on both transports, streamed (partial) frames —
// shm rings smaller than one payload, TCP byte-stream reassembly — and
// stop-flag semantics for blocked senders and parked receivers. All
// endpoints are attached in-process: the transports are plain byte movers
// with no fork dependence, which is exactly what makes them testable here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/channel.hpp"
#include "net/shm_channel.hpp"
#include "net/socket_channel.hpp"

namespace net = fxpar::net;

namespace {

std::vector<std::byte> bytes_pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131u + seed * 17u) & 0xffu);
  }
  return v;
}

/// Drains `ch` (parking between polls) until `want` frames arrived.
std::vector<net::Frame> drain_until(net::Channel& ch, std::size_t want) {
  std::vector<net::Frame> got;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (got.size() < want) {
    if (!ch.drain(got)) {
      if (std::chrono::steady_clock::now() > deadline) {
        ADD_FAILURE() << "drain_until: timed out with " << got.size() << "/" << want;
        break;
      }
      ch.wait(0.05);
    }
  }
  return got;
}

std::unique_ptr<net::Transport> make_transport(const std::string& which, int n) {
  if (which == "shm") return std::make_unique<net::ShmTransport>(n);
  return std::make_unique<net::TcpTransport>(n);
}

class NetTransport : public ::testing::TestWithParam<const char*> {};

}  // namespace

TEST_P(NetTransport, FrameRoundTripPreservesKindTagPayload) {
  auto t = make_transport(GetParam(), 2);
  EXPECT_STREQ(t->name(), GetParam());
  EXPECT_EQ(t->num_ranks(), 2);
  auto c0 = t->attach(0);
  auto c1 = t->attach(1);
  EXPECT_EQ(c0->rank(), 0);
  EXPECT_STREQ(c1->transport(), GetParam());

  const auto payload = bytes_pattern(1000, 7);
  c0->send(1, net::FrameKind::Data, 42, payload.data(), payload.size());
  c0->send(1, net::FrameKind::Done, 3, payload.data(), 0);  // empty payload

  const auto got = drain_until(*c1, 2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].kind, net::FrameKind::Data);
  EXPECT_EQ(got[0].src, 0);
  EXPECT_EQ(got[0].tag, 42u);
  ASSERT_EQ(got[0].payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(got[0].payload.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(got[1].kind, net::FrameKind::Done);
  EXPECT_EQ(got[1].tag, 3u);
  EXPECT_TRUE(got[1].payload.empty());
}

TEST_P(NetTransport, PerSourceFifoAcrossInterleavedSenders) {
  auto t = make_transport(GetParam(), 3);
  auto c0 = t->attach(0);
  auto c1 = t->attach(1);
  auto c2 = t->attach(2);

  constexpr int kPerSender = 100;
  auto sender = [&](net::Channel& ch) {
    for (int i = 0; i < kPerSender; ++i) {
      const auto body = bytes_pattern(32 + static_cast<std::size_t>(i), 1);
      ch.send(0, net::FrameKind::Data, static_cast<std::uint64_t>(i), body.data(),
              body.size());
    }
  };
  std::thread s1([&] { sender(*c1); });
  std::thread s2([&] { sender(*c2); });
  const auto got = drain_until(*c0, 2 * kPerSender);
  s1.join();
  s2.join();

  // The interleaving of sources is arbitrary; the order *within* each
  // source must be exactly the send order (the backend's determinism
  // contract hangs on this).
  ASSERT_EQ(got.size(), static_cast<std::size_t>(2 * kPerSender));
  std::uint64_t next_tag[3] = {0, 0, 0};
  for (const net::Frame& f : got) {
    ASSERT_TRUE(f.src == 1 || f.src == 2) << "src " << f.src;
    EXPECT_EQ(f.tag, next_tag[f.src]) << "src " << f.src;
    EXPECT_EQ(f.payload.size(), 32 + f.tag);
    ++next_tag[f.src];
  }
  EXPECT_EQ(next_tag[1], static_cast<std::uint64_t>(kPerSender));
  EXPECT_EQ(next_tag[2], static_cast<std::uint64_t>(kPerSender));
}

TEST_P(NetTransport, LargeFrameStreamsThroughBoundedBuffers) {
  // A payload far larger than any single buffer: the shm transport gets a
  // deliberately tiny ring so the frame must cross as many partial pieces;
  // on TCP the kernel socket buffers force partial writes and reads. The
  // producer blocks until the consumer drains, so it runs on its own
  // thread (in the real backend they are separate processes).
  std::unique_ptr<net::Transport> t;
  if (std::string(GetParam()) == "shm") {
    t = std::make_unique<net::ShmTransport>(2, /*ring_bytes=*/4096);
  } else {
    t = std::make_unique<net::TcpTransport>(2);
  }
  auto c0 = t->attach(0);
  auto c1 = t->attach(1);

  const auto big = bytes_pattern(3u << 20, 9);  // 3 MiB
  std::thread producer(
      [&] { c0->send(1, net::FrameKind::Data, 77, big.data(), big.size()); });
  const auto got = drain_until(*c1, 1);
  producer.join();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src, 0);
  EXPECT_EQ(got[0].tag, 77u);
  ASSERT_EQ(got[0].payload.size(), big.size());
  EXPECT_EQ(std::memcmp(got[0].payload.data(), big.data(), big.size()), 0);
}

TEST_P(NetTransport, SmallFramesAfterLargeOneStayFramed) {
  // Reassembly state must reset cleanly between frames: a streamed frame
  // followed by ordinary ones on the same source.
  std::unique_ptr<net::Transport> t;
  if (std::string(GetParam()) == "shm") {
    t = std::make_unique<net::ShmTransport>(2, /*ring_bytes=*/4096);
  } else {
    t = std::make_unique<net::TcpTransport>(2);
  }
  auto c0 = t->attach(0);
  auto c1 = t->attach(1);
  const auto big = bytes_pattern(256 * 1024, 2);
  const auto small = bytes_pattern(64, 5);
  std::thread producer([&] {
    c0->send(1, net::FrameKind::Data, 1, big.data(), big.size());
    c0->send(1, net::FrameKind::Data, 2, small.data(), small.size());
    c0->send(1, net::FrameKind::Done, 0, small.data(), 0);
  });
  const auto got = drain_until(*c1, 3);
  producer.join();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].payload.size(), big.size());
  EXPECT_EQ(got[1].payload.size(), small.size());
  EXPECT_EQ(std::memcmp(got[1].payload.data(), small.data(), small.size()), 0);
  EXPECT_EQ(got[2].kind, net::FrameKind::Done);
}

TEST_P(NetTransport, StopFlagUnblocksSenderAndWaiter) {
  std::unique_ptr<net::Transport> t;
  if (std::string(GetParam()) == "shm") {
    t = std::make_unique<net::ShmTransport>(2, /*ring_bytes=*/4096);
  } else {
    t = std::make_unique<net::TcpTransport>(2);
  }
  auto c0 = t->attach(0);
  auto c1 = t->attach(1);
  std::atomic<std::uint32_t> stop{0};
  c0->set_stop(&stop);
  c1->set_stop(&stop);

  // Nobody drains rank 1: the producer must block (tiny ring / full socket
  // buffer) and then observe the stop flag as ChannelStopped.
  std::atomic<bool> threw{false};
  const auto big = bytes_pattern(8u << 20, 4);
  std::thread producer([&] {
    try {
      for (;;) c0->send(1, net::FrameKind::Data, 9, big.data(), big.size());
    } catch (const net::ChannelStopped&) {
      threw.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(1, std::memory_order_release);
  producer.join();
  EXPECT_TRUE(threw.load(std::memory_order_acquire));

  // A parked receiver with the stop flag raised returns promptly instead
  // of sitting out its timeout.
  const auto t0 = std::chrono::steady_clock::now();
  (void)c0->wait(30.0);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
}

INSTANTIATE_TEST_SUITE_P(Transports, NetTransport, ::testing::Values("shm", "tcp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });
