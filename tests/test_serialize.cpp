// Tests for the byte-packing helpers of the communication layer.
#include <gtest/gtest.h>

#include <complex>

#include "comm/serialize.hpp"

namespace cm = fxpar::comm;

TEST(Serialize, ValueRoundTrip) {
  EXPECT_EQ(cm::unpack_value<int>(cm::pack_value(42)), 42);
  EXPECT_DOUBLE_EQ(cm::unpack_value<double>(cm::pack_value(3.25)), 3.25);
  const std::complex<double> z(1.5, -2.5);
  EXPECT_EQ(cm::unpack_value<std::complex<double>>(cm::pack_value(z)), z);
}

namespace {
struct Pod {
  int a;
  double b;
  char c;
  friend bool operator==(const Pod&, const Pod&) = default;
};
}  // namespace

TEST(Serialize, StructRoundTrip) {
  const Pod p{7, 2.5, 'x'};
  EXPECT_EQ(cm::unpack_value<Pod>(cm::pack_value(p)), p);
}

TEST(Serialize, ValueSizeMismatchThrows) {
  auto p = cm::pack_value<int>(1);
  EXPECT_THROW(cm::unpack_value<double>(p), std::invalid_argument);
}

TEST(Serialize, SpanRoundTrip) {
  const std::vector<float> v{1.0f, -2.0f, 3.5f};
  const auto p = cm::pack_span(std::span<const float>(v));
  EXPECT_EQ(p.size(), 3 * sizeof(float));
  EXPECT_EQ(cm::unpack_vector<float>(p), v);
}

TEST(Serialize, EmptySpanGivesEmptyVector) {
  const std::vector<int> v;
  const auto p = cm::pack_span(std::span<const int>(v));
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(cm::unpack_vector<int>(p).empty());
}

TEST(Serialize, VectorSizeMismatchThrows) {
  fxpar::machine::Payload p(7);  // not a multiple of sizeof(int)
  EXPECT_THROW(cm::unpack_vector<int>(p), std::invalid_argument);
}

TEST(Serialize, AppendAndReadSequence) {
  fxpar::machine::Payload p;
  cm::append_value(p, 11);
  cm::append_value(p, 2.5);
  cm::append_value(p, 'z');
  std::size_t off = 0;
  EXPECT_EQ(cm::read_value<int>(p, off), 11);
  EXPECT_DOUBLE_EQ(cm::read_value<double>(p, off), 2.5);
  EXPECT_EQ(cm::read_value<char>(p, off), 'z');
  EXPECT_EQ(off, p.size());
  EXPECT_THROW(cm::read_value<int>(p, off), std::out_of_range);
}
