// Tests for the shared bench CLI (bench/bench_common.hpp): flags with a
// missing or invalid argument must exit 2 (automation depends on loud
// failures, not silently mislabeled records), --work-stealing must reach
// MachineConfig, and json_record must emit `null` for non-finite numbers so
// every line stays parseable JSON for the perf-smoke gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "metrics/metrics.hpp"

namespace {

// Runs fxbench::init on a mutable copy of `args` (argv[0] included).
void run_init(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  fxbench::init(static_cast<int>(argv.size()), argv.data());
}

// Saves and restores the global bench options around a test that parses.
struct OptionsGuard {
  fxbench::Options saved = fxbench::options();
  ~OptionsGuard() { fxbench::options() = saved; }
};

}  // namespace

// ---------------------------------------------------------------------------
// Missing / invalid arguments exit with status 2
// ---------------------------------------------------------------------------

TEST(BenchCliDeathTest, TrailingJsonOutExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--json-out"}); std::exit(0); },
              testing::ExitedWithCode(2), "--json-out requires an argument");
}

TEST(BenchCliDeathTest, TrailingTraceOutExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--trace-out"}); std::exit(0); },
              testing::ExitedWithCode(2), "--trace-out requires an argument");
}

TEST(BenchCliDeathTest, TrailingThreadsExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--threads"}); std::exit(0); },
              testing::ExitedWithCode(2), "--threads requires an argument");
}

TEST(BenchCliDeathTest, TrailingBackendExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--backend"}); std::exit(0); },
              testing::ExitedWithCode(2), "--backend requires an argument");
}

TEST(BenchCliDeathTest, InvalidBackendExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--backend", "cuda"}); std::exit(0); },
              testing::ExitedWithCode(2), "--backend must be 'sim', 'threads' or 'proc'");
}

TEST(BenchCliDeathTest, TrailingTransportExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--transport"}); std::exit(0); },
              testing::ExitedWithCode(2), "--transport requires an argument");
}

TEST(BenchCliDeathTest, InvalidTransportExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--transport", "rdma"}); std::exit(0); },
              testing::ExitedWithCode(2), "--transport must be 'shm' or 'tcp'");
}

TEST(BenchCliDeathTest, TrailingMetricsExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--metrics"}); std::exit(0); },
              testing::ExitedWithCode(2), "--metrics requires an argument");
}

TEST(BenchCliDeathTest, InvalidMetricsExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--metrics", "sometimes"}); std::exit(0); },
              testing::ExitedWithCode(2), "--metrics must be 'on' or 'off'");
}

TEST(BenchCliDeathTest, TrailingMetricsOutExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--metrics-out"}); std::exit(0); },
              testing::ExitedWithCode(2), "--metrics-out requires an argument");
}

TEST(BenchCliDeathTest, TrailingWorkStealingExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--work-stealing"}); std::exit(0); },
              testing::ExitedWithCode(2), "--work-stealing requires an argument");
}

TEST(BenchCliDeathTest, InvalidWorkStealingExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--work-stealing", "maybe"}); std::exit(0); },
              testing::ExitedWithCode(2), "--work-stealing must be 'on' or 'off'");
}

TEST(BenchCliDeathTest, TrailingObsPortExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--obs-port"}); std::exit(0); },
              testing::ExitedWithCode(2), "--obs-port requires an argument");
}

TEST(BenchCliDeathTest, InvalidObsPortExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--obs-port", "http"}); std::exit(0); },
              testing::ExitedWithCode(2), "--obs-port must be a port");
  EXPECT_EXIT({ run_init({"bench", "--obs-port", "70000"}); std::exit(0); },
              testing::ExitedWithCode(2), "--obs-port must be a port");
}

TEST(BenchCliDeathTest, TrailingFlightRecorderExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--flight-recorder"}); std::exit(0); },
              testing::ExitedWithCode(2), "--flight-recorder requires an argument");
}

TEST(BenchCliDeathTest, InvalidFlightRecorderExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--flight-recorder", "always"}); std::exit(0); },
              testing::ExitedWithCode(2), "--flight-recorder must be 'on' or 'off'");
}

// ---------------------------------------------------------------------------
// --work-stealing reaches MachineConfig
// ---------------------------------------------------------------------------

TEST(BenchCli, WorkStealingToggleAppliesToConfig) {
  OptionsGuard guard;

  // Default: the CLI does not override the config.
  fxbench::options() = fxbench::Options{};
  auto cfg = fxpar::MachineConfig::paragon(4);
  ASSERT_TRUE(cfg.work_stealing);  // on by default
  EXPECT_TRUE(fxbench::apply_backend(cfg).work_stealing);

  fxbench::options() = fxbench::Options{};
  run_init({"bench", "--work-stealing", "off", "--backend", "threads"});
  EXPECT_EQ(fxbench::options().work_stealing, 0);
  EXPECT_FALSE(fxbench::apply_backend(cfg).work_stealing);

  fxbench::options() = fxbench::Options{};
  cfg.work_stealing = false;
  run_init({"bench", "--work-stealing", "on"});
  EXPECT_EQ(fxbench::options().work_stealing, 1);
  EXPECT_TRUE(fxbench::apply_backend(cfg).work_stealing);
}

TEST(BenchCli, MetricsToggleAppliesToConfig) {
  OptionsGuard guard;

  // Default: the CLI does not override the config (metrics stay on).
  fxbench::options() = fxbench::Options{};
  auto cfg = fxpar::MachineConfig::paragon(4);
  ASSERT_TRUE(cfg.metrics);  // on by default
  EXPECT_TRUE(fxbench::apply_backend(cfg).metrics);

  fxbench::options() = fxbench::Options{};
  run_init({"bench", "--metrics", "off"});
  EXPECT_EQ(fxbench::options().metrics, 0);
  EXPECT_FALSE(fxbench::apply_backend(cfg).metrics);

  fxbench::options() = fxbench::Options{};
  cfg.metrics = false;
  run_init({"bench", "--metrics", "on"});
  EXPECT_EQ(fxbench::options().metrics, 1);
  EXPECT_TRUE(fxbench::apply_backend(cfg).metrics);
}

TEST(BenchCli, ObservabilityFlagsApplyToConfig) {
  OptionsGuard guard;

  // Default: no endpoint, recorder follows the config.
  fxbench::options() = fxbench::Options{};
  auto cfg = fxpar::MachineConfig::paragon(4);
  EXPECT_EQ(fxbench::apply_backend(cfg).obs_port, -1);
  EXPECT_FALSE(fxbench::apply_backend(cfg).flight_recorder);

  fxbench::options() = fxbench::Options{};
  run_init({"bench", "--obs-port", "18917", "--flight-recorder", "on"});
  EXPECT_EQ(fxbench::options().obs_port, 18917);
  EXPECT_EQ(fxbench::options().flight_recorder, 1);
  EXPECT_EQ(fxbench::apply_backend(cfg).obs_port, 18917);
  EXPECT_TRUE(fxbench::apply_backend(cfg).flight_recorder);

  fxbench::options() = fxbench::Options{};
  run_init({"bench", "--obs-port", "0", "--flight-recorder", "off"});
  EXPECT_EQ(fxbench::options().obs_port, 0);  // ephemeral port is a valid ask
  EXPECT_EQ(fxbench::options().flight_recorder, 0);
}

// ---------------------------------------------------------------------------
// report_metrics picks the format from the file extension
// ---------------------------------------------------------------------------

namespace {

// A RunResult carrying a one-counter snapshot, as if a run had completed.
fxpar::machine::RunResult result_with_snapshot() {
  fxpar::metrics::Registry reg(1);
  reg.counter("fxpar_demo_total")->add(0, 5);
  fxpar::machine::RunResult res;
  res.metrics = std::make_shared<const fxpar::metrics::Snapshot>(reg.snapshot());
  return res;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

TEST(BenchCli, ReportMetricsWritesPrometheusOrJsonByExtension) {
  OptionsGuard guard;
  const fxpar::machine::RunResult res = result_with_snapshot();

  // No sink configured: nothing to do (and nothing to crash on).
  fxbench::options() = fxbench::Options{};
  fxbench::report_metrics(res);
  fxbench::report_metrics(fxpar::machine::RunResult{});  // no snapshot either

  const std::string prom_path = testing::TempDir() + "fxpar_bench_cli_metrics.prom";
  fxbench::options().metrics_out = prom_path;
  fxbench::report_metrics(res);
  const std::string prom = slurp(prom_path);
  EXPECT_NE(prom.find("# TYPE fxpar_demo_total counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("fxpar_demo_total 5"), std::string::npos) << prom;

  const std::string json_path = testing::TempDir() + "fxpar_bench_cli_metrics.json";
  fxbench::options().metrics_out = json_path;
  fxbench::report_metrics(res);
  const std::string json = slurp(json_path);
  EXPECT_NE(json.find("\"fxpar_demo_total\""), std::string::npos) << json;
  EXPECT_EQ(json.find("# TYPE"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// json_record sanitizes non-finite numbers
// ---------------------------------------------------------------------------

// json_stream() opens its sink once per process, so every record test in
// this binary shares one file and reads back its own appended lines.
namespace {

std::string record_sink_path() {
  static const std::string path = testing::TempDir() + "fxpar_bench_cli_records.jsonl";
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

TEST(BenchCli, JsonRecordEmitsNullForNonFiniteValues) {
  fxbench::options().json_out = record_sink_path();
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  fxbench::json_record("sanitize/nonfinite", {{"case", "nonfinite"}}, inf, nan, 7,
                       /*host_ms=*/nan, 0, 0, "threads", 4, /*wait_ms=*/inf,
                       /*steals=*/3, /*stolen_iters=*/44);

  const auto lines = read_lines(record_sink_path());
  ASSERT_FALSE(lines.empty());
  const std::string& rec = lines.back();
  ASSERT_NE(rec.find("\"name\":\"sanitize/nonfinite\""), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"time_s\":null"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"efficiency\":null"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"host_ms\":null"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"wait_ms\":null"), std::string::npos) << rec;
  // No bare non-JSON tokens anywhere in the line.
  EXPECT_EQ(rec.find("inf"), std::string::npos) << rec;
  EXPECT_EQ(rec.find("nan"), std::string::npos) << rec;
  // The finite fields still round-trip.
  EXPECT_NE(rec.find("\"comm_bytes\":7"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"steals\":3,\"stolen_iters\":44"), std::string::npos) << rec;
}

TEST(BenchCli, JsonRecordFiniteValuesAndOptionalFields) {
  fxbench::options().json_out = record_sink_path();
  // steals < 0 means "not a threads run": the work-stealing fields must be
  // absent, not zero, so the perf gate can tell the cases apart.
  fxbench::json_record("sanitize/finite", {{"case", "plain"}}, 1.5, 0.75, 10);

  const auto lines = read_lines(record_sink_path());
  ASSERT_FALSE(lines.empty());
  const std::string& rec = lines.back();
  ASSERT_NE(rec.find("\"name\":\"sanitize/finite\""), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"time_s\":1.5"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"efficiency\":0.75"), std::string::npos) << rec;
  EXPECT_EQ(rec.find("\"steals\""), std::string::npos) << rec;
  EXPECT_EQ(rec.find("null"), std::string::npos) << rec;
  // Every record carries the process memory-pressure counters.
  EXPECT_NE(rec.find("\"minor_faults\":"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"max_rss_kb\":"), std::string::npos) << rec;
}

// ---------------------------------------------------------------------------
// Numeric flag validation: zero, negative, malformed and overflowing values
// must die loudly instead of silently mislabeling a run
// ---------------------------------------------------------------------------

TEST(BenchCliDeathTest, ThreadsZeroExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--threads", "0"}); std::exit(0); },
              testing::ExitedWithCode(2),
              "--threads must be an integer in \\[1, 4096\\], got '0'");
}

TEST(BenchCliDeathTest, ThreadsNegativeExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--threads", "-4"}); std::exit(0); },
              testing::ExitedWithCode(2), "--threads must be an integer");
}

TEST(BenchCliDeathTest, ThreadsMalformedExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--threads", "abc"}); std::exit(0); },
              testing::ExitedWithCode(2), "--threads must be an integer");
}

TEST(BenchCliDeathTest, ThreadsTrailingJunkExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--threads", "4x"}); std::exit(0); },
              testing::ExitedWithCode(2), "--threads must be an integer");
}

TEST(BenchCliDeathTest, ThreadsOverflowExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--threads", "99999999999999999999"}); std::exit(0); },
              testing::ExitedWithCode(2), "--threads must be an integer");
}

TEST(BenchCliDeathTest, ObsPortOutOfRangeExitsTwo) {
  EXPECT_EXIT({ run_init({"bench", "--obs-port", "65536"}); std::exit(0); },
              testing::ExitedWithCode(2), "--obs-port must be a port");
}

// The serving bench's flags go through the same validators; exercise them
// directly so their contract is pinned without spawning the bench binary.

TEST(BenchCliDeathTest, ParseIntFlagRejectsBelowRange) {
  EXPECT_EXIT({ (void)fxbench::parse_int_flag("--streams", "0", 1, 1024); std::exit(0); },
              testing::ExitedWithCode(2),
              "--streams must be an integer in \\[1, 1024\\], got '0'");
}

TEST(BenchCliDeathTest, ParseDoubleFlagRejectsNegative) {
  EXPECT_EXIT(
      { (void)fxbench::parse_double_flag("--arrival-rate", "-1", 1e-9, 1e15); std::exit(0); },
      testing::ExitedWithCode(2), "--arrival-rate must be a number");
}

TEST(BenchCliDeathTest, ParseDoubleFlagRejectsNonFinite) {
  EXPECT_EXIT(
      { (void)fxbench::parse_double_flag("--duration", "inf", 1e-9, 1e9); std::exit(0); },
      testing::ExitedWithCode(2), "--duration must be a number");
}

TEST(BenchCliDeathTest, ParseDoubleFlagRejectsMalformed) {
  EXPECT_EXIT(
      { (void)fxbench::parse_double_flag("--duration", "1x2", 1e-9, 1e9); std::exit(0); },
      testing::ExitedWithCode(2), "--duration must be a number");
}

TEST(BenchCli, ParsersAcceptInRangeValues) {
  EXPECT_EQ(fxbench::parse_int_flag("--streams", "8", 1, 1024), 8);
  EXPECT_EQ(fxbench::parse_int_flag("--threads", "4096", 1, 4096), 4096);
  EXPECT_DOUBLE_EQ(fxbench::parse_double_flag("--duration", "2.5", 1e-9, 1e9), 2.5);
}
