// Tests for scan/exscan collectives and whole-array reductions.
#include <gtest/gtest.h>

#include <functional>

#include "core/fx.hpp"

using namespace fxpar;
namespace ds = fxpar::dist;

namespace {
MachineConfig cfg(int p) {
  auto c = MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}
}  // namespace

class ScanSizes : public ::testing::TestWithParam<int> {};

TEST_P(ScanSizes, InclusiveScanPrefixSums) {
  const int p = GetParam();
  Machine m(cfg(p));
  m.run([&](Context& ctx) {
    const auto g = ProcessorGroup::identity(p);
    const int me = ctx.phys_rank();
    const int got = comm::scan(ctx, g, me + 1, std::plus<int>{});
    EXPECT_EQ(got, (me + 1) * (me + 2) / 2);
  });
}

TEST_P(ScanSizes, ExclusiveScanShiftsByOne) {
  const int p = GetParam();
  Machine m(cfg(p));
  m.run([&](Context& ctx) {
    const auto g = ProcessorGroup::identity(p);
    const int me = ctx.phys_rank();
    const int got = comm::exscan(ctx, g, me + 1, std::plus<int>{}, 0);
    EXPECT_EQ(got, me * (me + 1) / 2);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes, ::testing::Values(1, 2, 3, 5, 8));

TEST(Scan, SubgroupScanIsGroupRelative) {
  Machine m(cfg(6));
  const ProcessorGroup sub({2, 4, 5});
  m.run([&](Context& ctx) {
    if (!sub.contains(ctx.phys_rank())) return;
    const int got = comm::scan(ctx, sub, 10, std::plus<int>{});
    EXPECT_EQ(got, 10 * (sub.virtual_of(ctx.phys_rank()) + 1));
  });
}

TEST(Scan, MaxScanIsMonotone) {
  Machine m(cfg(5));
  m.run([&](Context& ctx) {
    const auto g = ProcessorGroup::identity(5);
    const int mine = (ctx.phys_rank() * 37) % 11;
    const int got = comm::scan(ctx, g, mine, [](int a, int b) { return std::max(a, b); });
    int expect = 0;
    for (int r = 0; r <= ctx.phys_rank(); ++r) expect = std::max(expect, (r * 37) % 11);
    EXPECT_EQ(got, expect);
  });
}

TEST(ArrayReductions, SumMinMaxCount) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    const auto g = ProcessorGroup::identity(4);
    ds::DistArray<std::int64_t> a(ctx, ds::Layout(g, {20}, {ds::DimDist::cyclic()}), "a");
    a.fill([](std::span<const std::int64_t> gi) { return gi[0] - 5; });  // -5..14
    EXPECT_EQ(ds::array_sum(ctx, a), 90);
    EXPECT_EQ(ds::array_min(ctx, a), -5);
    EXPECT_EQ(ds::array_max(ctx, a), 14);
    EXPECT_EQ(ds::array_count(ctx, a, [](std::int64_t v) { return v < 0; }), 5);
  });
}

TEST(ArrayReductions, TwoDimensional) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    const auto g = ProcessorGroup::identity(4);
    ds::DistArray<double> a(
        ctx, ds::Layout(g, {6, 4}, {ds::DimDist::block(), ds::DimDist::block()}), "a");
    a.fill([](std::span<const std::int64_t> gi) {
      return static_cast<double>(gi[0] * 4 + gi[1]);
    });
    EXPECT_DOUBLE_EQ(ds::array_sum(ctx, a), 23.0 * 24.0 / 2.0);
    EXPECT_DOUBLE_EQ(ds::array_max(ctx, a), 23.0);
  });
}

TEST(ArrayReductions, ReplicatedArrayNeedsNoCommunication) {
  Machine m(cfg(3));
  auto res = m.run([&](Context& ctx) {
    const auto g = ProcessorGroup::identity(3);
    ds::DistArray<int> a(ctx, ds::Layout(g, {8}, {ds::DimDist::collapsed()}), "rep");
    a.fill([](std::span<const std::int64_t> gi) { return static_cast<int>(gi[0]); });
    EXPECT_EQ(ds::array_sum(ctx, a), 28);
  });
  EXPECT_EQ(res.messages, 0u);
}

TEST(ArrayReductions, SubgroupArrayReducedBySubgroup) {
  Machine m(cfg(6));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"g1", 2}, {"g2", 4}});
    auto a = core::subgroup_array<int>(ctx, part, "g2", {10}, {ds::DimDist::block()});
    core::TaskRegion region(ctx, part);
    region.on("g2", [&] {
      a.fill([](std::span<const std::int64_t> gi) { return static_cast<int>(gi[0] + 1); });
      EXPECT_EQ(ds::array_sum(ctx, a), 55);
    });
  });
}

TEST(ArrayReductions, NonMemberRejected) {
  Machine m(cfg(4));
  const ProcessorGroup sub({0, 1});
  EXPECT_THROW(m.run([&](Context& ctx) {
    ds::DistArray<int> a(ctx, ds::Layout(sub, {4}, {ds::DimDist::block()}), "a");
    if (ctx.phys_rank() >= 2) ds::array_sum(ctx, a);
  }),
               std::logic_error);
}

TEST(Scan, DeterministicFloatOrder) {
  auto once = [] {
    Machine m(cfg(6));
    double out = 0.0;
    m.run([&](Context& ctx) {
      const auto g = ProcessorGroup::identity(6);
      const double got =
          comm::scan(ctx, g, 0.1 * (ctx.phys_rank() + 1), std::plus<double>{});
      if (ctx.phys_rank() == 5) out = got;
    });
    return out;
  };
  EXPECT_EQ(once(), once());
}
