// Tests for the HPF 2.0 style general ON construct (paper Section 6) and
// its interplay with the Fx-style task regions.
#include <gtest/gtest.h>

#include "core/fx.hpp"
#include "core/hpf_on.hpp"

using namespace fxpar;
namespace ds = fxpar::dist;
namespace hpf = fxpar::core::hpf;

namespace {
MachineConfig cfg(int p) {
  auto c = MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}
}  // namespace

TEST(HpfOn, RunsOnComputedSubset) {
  Machine m(cfg(6));
  m.run([&](Context& ctx) {
    // The subset is computed at runtime — no declaration needed.
    std::vector<int> odd;
    for (int r = 1; r < ctx.nprocs(); r += 2) odd.push_back(r);
    bool ran = false;
    hpf::on(ctx, ProcessorGroup(odd), [&](const ProcessorGroup& g) {
      ran = true;
      EXPECT_EQ(ctx.nprocs(), g.size());
    });
    EXPECT_EQ(ran, ctx.phys_rank() % 2 == 1);
    EXPECT_EQ(ctx.nprocs(), 6);
  });
}

TEST(HpfOn, RangeFormSelectsRectilinearSubset) {
  Machine m(cfg(8));
  m.run([&](Context& ctx) {
    int seen = -1;
    hpf::on_range(ctx, 2, 3, [&] { seen = ctx.vrank(); });
    if (ctx.phys_rank() >= 2 && ctx.phys_rank() <= 4) {
      EXPECT_EQ(seen, ctx.phys_rank() - 2);
    } else {
      EXPECT_EQ(seen, -1);
    }
  });
}

TEST(HpfOn, NonSubsetRejected) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    // Enter a subgroup, then name processors outside it.
    const ProcessorGroup sub({0, 1});
    if (!sub.contains(ctx.phys_rank())) return;
    ctx.push_group(sub);
    EXPECT_THROW(hpf::on(ctx, ProcessorGroup({2}), [] {}), std::logic_error);
    ctx.pop_group();
  });
}

TEST(HpfOn, NestsDirectly) {
  // Unlike Fx's ON (which requires a procedure call with a new task region
  // to nest), the HPF construct composes freely.
  Machine m(cfg(8));
  m.run([&](Context& ctx) {
    int depth = 0;
    hpf::on_range(ctx, 0, 4, [&] {
      depth = ctx.group_depth();
      hpf::on_range(ctx, 0, 2, [&] {
        depth = ctx.group_depth();
        EXPECT_EQ(ctx.nprocs(), 2);
      });
    });
    if (ctx.phys_rank() < 2) {
      EXPECT_EQ(depth, 3);
    }
  });
}

TEST(HpfOn, SkippersPayNothing) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    hpf::on_range(ctx, 0, 1, [&] { ctx.charge(10.0); });
    if (ctx.phys_rank() != 0) {
      EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
    }
  });
}

TEST(HpfOn, ExceptionRestoresGroupStack) {
  Machine m(cfg(2));
  m.run([&](Context& ctx) {
    const int before = ctx.group_depth();
    try {
      hpf::on_range(ctx, 0, 2, [&] { throw std::runtime_error("body"); });
      FAIL();
    } catch (const std::runtime_error&) {
    }
    EXPECT_EQ(ctx.group_depth(), before);
  });
}

TEST(HpfOn, WorksWithDistributedArraysAndAssignment) {
  // The HPF style still composes with subgroup-mapped data: map arrays onto
  // computed groups and exchange through the minimal-subset assignment.
  Machine m(cfg(6));
  m.run([&](Context& ctx) {
    const ProcessorGroup left = ctx.group().slice(0, 3);
    const ProcessorGroup right = ctx.group().slice(3, 3);
    ds::DistArray<int> a(ctx, ds::Layout(left, {9}, {ds::DimDist::block()}), "a");
    ds::DistArray<int> b(ctx, ds::Layout(right, {9}, {ds::DimDist::cyclic()}), "b");
    hpf::on(ctx, left, [&] {
      a.fill([](std::span<const std::int64_t> g) { return static_cast<int>(g[0] * 2); });
    });
    ds::assign(ctx, b, a);
    hpf::on(ctx, right, [&] {
      b.for_each_owned([](std::span<const std::int64_t> g, int& v) {
        EXPECT_EQ(v, static_cast<int>(g[0] * 2));
      });
    });
  });
}

TEST(HpfOn, EquivalentToFxOnForPartitionSubgroups) {
  // For a subgroup that does come from a partition, both styles give the
  // same execution.
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"x", 2}, {"y", 2}});
    int fx_count = 0, hpf_count = 0;
    {
      core::TaskRegion region(ctx, part);
      region.on("x", [&] { fx_count = ctx.nprocs(); });
    }
    hpf::on(ctx, part.subgroup("x"), [&] { hpf_count = ctx.nprocs(); });
    EXPECT_EQ(fx_count, hpf_count);
  });
}
