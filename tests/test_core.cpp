// Tests for the paper's model itself: TASK_PARTITION declarations,
// TASK_REGION / ON SUBGROUP execution semantics, replicated scalars, and
// dynamic nested partitioning.
#include <gtest/gtest.h>

#include <set>

#include "core/fx.hpp"

using namespace fxpar;
namespace ds = fxpar::dist;

namespace {
MachineConfig cfg(int p) {
  auto c = MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}
}  // namespace

TEST(TaskPartition, SplitsCurrentProcessors) {
  Machine m(cfg(8));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"some", 5}, {"many", ctx.nprocs() - 5}}, "myPart");
    EXPECT_EQ(part.num_subgroups(), 2);
    EXPECT_EQ(part.subgroup("some").size(), 5);
    EXPECT_EQ(part.subgroup("many").size(), 3);
    EXPECT_EQ(part.subgroup(0).members(), (std::vector<int>{0, 1, 2, 3, 4}));
    const int mine = part.my_subgroup(ctx);
    EXPECT_EQ(mine, ctx.phys_rank() < 5 ? 0 : 1);
  });
}

TEST(TaskPartition, WrongTotalRejected) {
  Machine m(cfg(4));
  EXPECT_THROW(m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"a", 2}, {"b", 3}});
  }),
               std::invalid_argument);
}

TEST(TaskRegion, OnRunsOnlyOnMembers) {
  Machine m(cfg(6));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"left", 2}, {"right", 4}});
    core::TaskRegion region(ctx, part);
    bool ran_left = false, ran_right = false;
    region.on("left", [&] {
      ran_left = true;
      EXPECT_EQ(ctx.nprocs(), 2);
      EXPECT_LT(ctx.phys_rank(), 2);
    });
    region.on("right", [&](const ProcessorGroup& g) {
      ran_right = true;
      EXPECT_EQ(g.size(), 4);
      EXPECT_GE(ctx.phys_rank(), 2);
    });
    EXPECT_EQ(ran_left, ctx.phys_rank() < 2);
    EXPECT_EQ(ran_right, ctx.phys_rank() >= 2);
    EXPECT_EQ(ctx.nprocs(), 6);  // back to parent scope
  });
}

TEST(TaskRegion, NonMembersSkipWithoutWaiting) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"busy", 2}, {"free", 2}});
    core::TaskRegion region(ctx, part);
    region.on("busy", [&] { ctx.charge(50.0); });
    if (ctx.phys_rank() >= 2) {
      EXPECT_DOUBLE_EQ(ctx.now(), 0.0);  // skipped past the ON block
    }
  });
}

TEST(TaskRegion, LexicalNestingOfOnRejected) {
  Machine m(cfg(2));
  EXPECT_THROW(m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"all", 2}});
    core::TaskRegion region(ctx, part);
    region.on("all", [&] { region.on("all", [&] {}); });
  }),
               std::logic_error);
}

TEST(TaskRegion, PartitionMustMatchCurrentGroup) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"a", 2}, {"b", 2}});
    // Enter a subgroup manually: the current group is no longer the
    // partition's parent, so activating the region must fail.
    const auto& mine = part.subgroup(ctx.phys_rank() < 2 ? "a" : "b");
    ctx.push_group(mine);
    EXPECT_THROW(core::TaskRegion region(ctx, part), std::logic_error);
    ctx.pop_group();
    // Back at parent scope the activation succeeds.
    core::TaskRegion ok(ctx, part);
  });
}

TEST(TaskRegion, DynamicNestingDividesSubgroup) {
  Machine m(cfg(8));
  m.run([&](Context& ctx) {
    std::set<int> innermost_sizes;
    core::TaskPartition part(ctx, {{"half1", 4}, {"half2", 4}});
    core::TaskRegion region(ctx, part);
    auto recurse = [&](auto&& self) -> void {
      if (ctx.nprocs() == 1) {
        innermost_sizes.insert(ctx.nprocs());
        return;
      }
      const int h = ctx.nprocs() / 2;
      core::TaskPartition p2(ctx, {{"lo", h}, {"hi", ctx.nprocs() - h}});
      core::TaskRegion r2(ctx, p2);
      r2.on("lo", [&] { self(self); });
      r2.on("hi", [&] { self(self); });
    };
    region.on("half1", [&] { recurse(recurse); });
    region.on("half2", [&] { recurse(recurse); });
    EXPECT_EQ(ctx.nprocs(), 8);
    EXPECT_EQ(innermost_sizes, (std::set<int>{1}));
  });
}

TEST(TaskRegion, ParentScopeStatementUsesAllProcessors) {
  // Reproduces the Section 2.1 example: many_low = some_low runs on the
  // union of both subgroups (all current processors owning either side).
  Machine m(cfg(6));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"some", 2}, {"many", 4}});
    auto some_low = core::subgroup_array<double>(ctx, part, "some", {8},
                                                 {ds::DimDist::block()}, "some_low");
    auto many_low = core::subgroup_array<double>(ctx, part, "many", {8},
                                                 {ds::DimDist::block()}, "many_low");
    core::TaskRegion region(ctx, part);
    region.on("some", [&] {
      some_low.fill([](std::span<const std::int64_t> g) {
        return static_cast<double>(g[0] * 2);
      });
    });
    ds::assign(ctx, many_low, some_low);  // parent scope
    region.on("many", [&] {
      many_low.for_each_owned([](std::span<const std::int64_t> g, double& v) {
        EXPECT_DOUBLE_EQ(v, static_cast<double>(g[0] * 2));
      });
    });
  });
}

TEST(Replicated, LocalUpdateNeedsNoCommunication) {
  Machine m(cfg(4));
  auto res = m.run([&](Context& ctx) {
    core::Replicated<int> i(ctx, 0);
    for (int k = 0; k < 10; ++k) i.increment();
    EXPECT_EQ(i.value(), 10);
  });
  EXPECT_EQ(res.messages, 0u);
  EXPECT_EQ(res.barriers, 0u);
}

TEST(Replicated, OwnerBroadcastCommunicates) {
  Machine m(cfg(4));
  auto res = m.run([&](Context& ctx) {
    core::Replicated<int> i(ctx, 0, core::ReplicationMode::OwnerBroadcast);
    i.increment();
    i.increment();
    EXPECT_EQ(i.value(), 2);
  });
  EXPECT_GT(res.messages, 0u);
}

TEST(Replicated, SetPropagatesValue) {
  Machine m(cfg(3));
  m.run([&](Context& ctx) {
    core::Replicated<double> x(ctx, 1.0);
    x.set(6.5);
    EXPECT_DOUBLE_EQ(x.value(), 6.5);
  });
}

TEST(Replicated, ScopeIsCurrentGroupAtConstruction) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"a", 2}, {"b", 2}});
    core::TaskRegion region(ctx, part);
    region.on(ctx.phys_rank() < 2 ? "a" : "b", [&](const ProcessorGroup& g) {
      core::Replicated<int> local(ctx, 0, core::ReplicationMode::OwnerBroadcast);
      EXPECT_EQ(local.scope(), g);
      local.increment();
      EXPECT_EQ(local.value(), 1);
    });
  });
}

TEST(SubgroupVar, DistributionRelativeToSubgroup) {
  Machine m(cfg(6));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"g1", 2}, {"g2", 4}});
    auto a = core::subgroup_array<int>(ctx, part, "g2", {8}, {ds::DimDist::block()});
    if (ctx.phys_rank() >= 2) {
      EXPECT_TRUE(a.is_member());
      EXPECT_EQ(a.local().size(), 2u);  // 8 elements over 4 procs
    } else {
      EXPECT_FALSE(a.is_member());
    }
  });
}

TEST(Integration, PipelineSkeletonOverlapsStages) {
  // Two-stage pipeline: stage A (procs 0..1) produces, stage B (procs 2..3)
  // consumes; with non-participating processors skipping assignments, both
  // stages overlap across iterations: makespan << serialized sum.
  Machine m(cfg(4));
  const double kStage = 10.0;
  const int kIters = 8;
  auto res = m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"A", 2}, {"B", 2}});
    auto buf_a = core::subgroup_array<int>(ctx, part, "A", {4}, {ds::DimDist::block()});
    auto buf_b = core::subgroup_array<int>(ctx, part, "B", {4}, {ds::DimDist::block()});
    core::TaskRegion region(ctx, part);
    core::Replicated<int> i(ctx, 0);
    for (int k = 0; k < kIters; ++k) {
      region.on("A", [&] {
        buf_a.fill_value(k);
        ctx.charge(kStage);
      });
      ds::assign(ctx, buf_b, buf_a);
      region.on("B", [&] { ctx.charge(kStage); });
      i.increment();
    }
    EXPECT_EQ(i.value(), kIters);
  });
  // Serialized would be ~2 * kIters * kStage = 160; pipelined ~ (kIters+1)*kStage.
  EXPECT_LT(res.finish_time, 1.5 * (kIters + 1) * kStage);
  EXPECT_GT(res.finish_time, kIters * kStage * 0.9);
}

TEST(TaskPartition, MultipleTemplatesPerScope) {
  // The paper: "A subprogram unit can have multiple task partition
  // directives to declare multiple templates for partitioning".
  Machine m(cfg(6));
  m.run([&](Context& ctx) {
    core::TaskPartition by_two(ctx, {{"a", 2}, {"b", 4}}, "byTwo");
    core::TaskPartition by_three(ctx, {{"x", 3}, {"y", 3}}, "byThree");
    {
      core::TaskRegion region(ctx, by_two);
      int n = 0;
      region.on(ctx.phys_rank() < 2 ? "a" : "b", [&] { n = ctx.nprocs(); });
      EXPECT_EQ(n, ctx.phys_rank() < 2 ? 2 : 4);
    }
    {
      core::TaskRegion region(ctx, by_three);
      int n = 0;
      region.on(ctx.phys_rank() < 3 ? "x" : "y", [&] { n = ctx.nprocs(); });
      EXPECT_EQ(n, 3);
    }
  });
}

TEST(TaskRegion, SequentialRegionsOverSamePartition) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"l", 2}, {"r", 2}});
    for (int round = 0; round < 3; ++round) {
      core::TaskRegion region(ctx, part);
      int hits = 0;
      region.on("l", [&] { ++hits; });
      region.on("r", [&] { ++hits; });
      EXPECT_EQ(hits, 1);  // each proc belongs to exactly one subgroup
    }
  });
}

TEST(TaskRegion, ExceptionInsideOnRestoresScope) {
  Machine m(cfg(2));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"all", 2}});
    const int depth = ctx.group_depth();
    try {
      core::TaskRegion region(ctx, part);
      region.on("all", [&] { throw std::runtime_error("body failed"); });
      FAIL();
    } catch (const std::runtime_error&) {
    }
    EXPECT_EQ(ctx.group_depth(), depth);
    // The model remains usable afterwards.
    core::TaskRegion again(ctx, part);
    bool ran = false;
    again.on("all", [&] { ran = true; });
    EXPECT_TRUE(ran);
  });
}
