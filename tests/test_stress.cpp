// Stress and determinism tests: pseudo-random SPMD programs exercising
// messaging, barriers, collectives, task regions and redistribution
// together must complete without deadlock and reproduce bit-identically.
#include <gtest/gtest.h>

#include <functional>

#include "core/fx.hpp"

using namespace fxpar;
namespace ds = fxpar::dist;

namespace {

MachineConfig cfg(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 512 * 1024;
  return c;
}

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

/// A seeded random program: every processor follows the same control flow
/// (decisions derive from the shared seed and loop counter, never from the
/// rank), mixing partitions, collectives, redistributions and barriers.
struct StressOutcome {
  double finish = 0.0;
  std::uint64_t messages = 0;
  double checksum = 0.0;
};

StressOutcome run_stress(int procs, unsigned seed, int rounds) {
  StressOutcome out;
  Machine m(cfg(procs));
  auto res = m.run([&](Context& ctx) {
    double acc = 0.0;
    for (int r = 0; r < rounds; ++r) {
      const std::uint64_t h = mix(seed * 1000003u + static_cast<unsigned>(r));
      switch (h % 5) {
        case 0: {  // allreduce
          acc += comm::allreduce(ctx, ctx.group(),
                                 static_cast<double>(ctx.vrank() + r), std::plus<double>{});
          break;
        }
        case 1: {  // subset barrier via task region with per-round split
          const int left = 1 + static_cast<int>(h / 7 % static_cast<unsigned>(procs - 1));
          core::TaskPartition part(ctx, {{"l", left}, {"r", ctx.nprocs() - left}});
          core::TaskRegion region(ctx, part);
          region.on("l", [&] { ctx.charge(1e-5); });
          region.on("r", [&] {
            acc += comm::allreduce(ctx, ctx.group(), 1.0, std::plus<double>{});
          });
          break;
        }
        case 2: {  // redistribution between round-dependent layouts
          const auto g = ctx.group();
          ds::DistArray<double> a(
              ctx, ds::Layout(g, {32}, {(h & 8) ? ds::DimDist::block() : ds::DimDist::cyclic()}),
              "sa");
          ds::DistArray<double> b(
              ctx,
              ds::Layout(g, {32},
                         {(h & 16) ? ds::DimDist::block_cyclic(3) : ds::DimDist::block()}),
              "sb");
          a.fill([&](std::span<const std::int64_t> gi) {
            return static_cast<double>(gi[0] + static_cast<std::int64_t>(h % 100));
          });
          ds::assign(ctx, b, a);
          double local = 0.0;
          for (double v : b.local()) local += v;
          acc += comm::allreduce(ctx, ctx.group(), local, std::plus<double>{});
          break;
        }
        case 3: {  // ring point-to-point
          const int n = ctx.nprocs();
          const int me = ctx.vrank();
          const std::uint64_t tag = ctx.collective_tag(ctx.group());
          ctx.send((me + 1) % n, tag, comm::pack_value(acc + me));
          acc += comm::unpack_value<double>(ctx.recv((me + n - 1) % n, tag));
          break;
        }
        default: {  // machine barrier + local work
          ctx.charge(static_cast<double>(h % 7) * 1e-6);
          ctx.barrier();
          break;
        }
      }
    }
    const double total = comm::allreduce(ctx, ctx.group(), acc, std::plus<double>{});
    if (ctx.phys_rank() == 0) out.checksum = total;
  });
  out.finish = res.finish_time;
  out.messages = res.messages;
  return out;
}

}  // namespace

class StressSweep : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(StressSweep, CompletesAndReproduces) {
  const int procs = std::get<0>(GetParam());
  const unsigned seed = std::get<1>(GetParam());
  const auto a = run_stress(procs, seed, 24);
  const auto b = run_stress(procs, seed, 24);
  EXPECT_GT(a.messages, 0u);
  EXPECT_EQ(a.finish, b.finish);      // bit-identical timing
  EXPECT_EQ(a.checksum, b.checksum);  // bit-identical values
  EXPECT_EQ(a.messages, b.messages);
}

INSTANTIATE_TEST_SUITE_P(ProcsBySeeds, StressSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 13),
                                            ::testing::Values(1u, 7u, 42u, 1337u)));

TEST(Stress, DifferentSeedsDiverge) {
  // Sanity that the stress program actually varies with the seed.
  const auto a = run_stress(4, 1, 24);
  const auto b = run_stress(4, 2, 24);
  EXPECT_NE(a.checksum, b.checksum);
}

TEST(Stress, DeepTaskRegionNesting) {
  // 32 levels of dynamic nesting on 2 processors (group stays the same
  // size at the 'r' side) must neither overflow stacks nor deadlock.
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    std::function<void(int)> rec = [&](int depth) {
      if (depth == 0 || ctx.nprocs() == 1) return;
      core::TaskPartition part(ctx, {{"a", 1}, {"b", ctx.nprocs() - 1}});
      core::TaskRegion region(ctx, part);
      region.on("b", [&] { rec(depth - 1); });
    };
    rec(32);
  });
}

TEST(Stress, ManySmallMessagesDrainCorrectly) {
  Machine m(cfg(2));
  constexpr int kMsgs = 500;
  m.run([&](Context& ctx) {
    if (ctx.phys_rank() == 0) {
      for (int k = 0; k < kMsgs; ++k) ctx.send_phys(1, 5, comm::pack_value(k));
    } else {
      for (int k = 0; k < kMsgs; ++k) {
        EXPECT_EQ(comm::unpack_value<int>(ctx.recv_phys(0, 5)), k);  // FIFO
      }
    }
  });
}
