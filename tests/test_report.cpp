// Tests for the machine run reports: summarize(), utilization_report(),
// and traffic_report() edge cases (empty runs, one processor, degenerate
// row/cell budgets) that previously risked division by zero — plus the
// trace analyzers (phase report, critical path) over a *merged* threaded
// trace with work stealing, the path the simulator-driven trace tests
// never exercise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/parallel_loop.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "machine/report.hpp"
#include "trace/critical_path.hpp"
#include "trace/phase_report.hpp"

namespace mx = fxpar::machine;
namespace tr = fxpar::trace;

namespace {

mx::RunResult make_result(std::vector<double> busy, double finish) {
  mx::RunResult res;
  res.finish_time = finish;
  for (double b : busy) {
    fxpar::runtime::ProcClock c;
    c.busy = b;
    c.now = finish;
    res.clocks.push_back(c);
  }
  return res;
}

}  // namespace

TEST(Report, SummarizeEmptyResultIsAllZero) {
  const mx::UtilizationSummary s = mx::summarize(mx::RunResult{});
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_busy_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.min_busy_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.max_busy_fraction, 0.0);
  EXPECT_EQ(s.least_busy_proc, -1);
  EXPECT_EQ(s.most_busy_proc, -1);
}

TEST(Report, SummarizeZeroMakespanDoesNotDivide) {
  // Clocks exist but no time passed (empty program).
  const mx::UtilizationSummary s = mx::summarize(make_result({0.0, 0.0}, 0.0));
  EXPECT_DOUBLE_EQ(s.mean_busy_fraction, 0.0);
}

TEST(Report, SummarizeComputesBusyFractions) {
  const mx::UtilizationSummary s = mx::summarize(make_result({1.0, 3.0, 2.0}, 4.0));
  EXPECT_DOUBLE_EQ(s.mean_busy_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.min_busy_fraction, 0.25);
  EXPECT_EQ(s.least_busy_proc, 0);
  EXPECT_DOUBLE_EQ(s.max_busy_fraction, 0.75);
  EXPECT_EQ(s.most_busy_proc, 1);
}

TEST(Report, UtilizationReportSingleProc) {
  const std::string rep = mx::utilization_report(make_result({2.0}, 4.0));
  EXPECT_NE(rep.find("mean busy 50%"), std::string::npos);
  EXPECT_NE(rep.find("proc 0"), std::string::npos);
}

TEST(Report, UtilizationReportEmptyClocks) {
  const std::string rep = mx::utilization_report(mx::RunResult{});
  EXPECT_NE(rep.find("machine utilization"), std::string::npos);
  EXPECT_NE(rep.find("messages 0"), std::string::npos);
}

TEST(Report, UtilizationReportClampsNonPositiveRowBudget) {
  // max_rows <= 0 must not divide by zero; it degrades to one row.
  const std::string rep = mx::utilization_report(make_result({1.0, 1.0}, 2.0), 0);
  EXPECT_NE(rep.find("procs 0-1"), std::string::npos);
  const std::string rep2 = mx::utilization_report(make_result({1.0, 1.0}, 2.0), -5);
  EXPECT_FALSE(rep2.empty());
}

TEST(Report, TrafficReportNamesTheConfigFlag) {
  const std::string rep = mx::traffic_report(make_result({1.0}, 1.0));
  EXPECT_NE(rep.find("MachineConfig::record_traffic = true"), std::string::npos);
}

TEST(Report, TrafficReportClampsNonPositiveCellBudget) {
  mx::RunResult res = make_result({1.0, 1.0}, 1.0);
  res.traffic = {0, 7, 7, 0};
  const std::string rep = mx::traffic_report(res, 0);
  EXPECT_NE(rep.find("communication matrix"), std::string::npos);
}

TEST(Report, ReportsAgreeWithALiveRun) {
  mx::MachineConfig cfg;
  cfg.num_procs = 2;
  cfg.record_traffic = true;
  cfg.stack_bytes = 128 * 1024;
  mx::Machine m(cfg);
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 1, mx::Payload(16));
    } else {
      (void)ctx.recv_phys(0, 1);
    }
  });
  const mx::UtilizationSummary s = mx::summarize(res);
  EXPECT_GT(s.makespan, 0.0);
  EXPECT_EQ(s.messages, 1u);
  const std::string util = mx::utilization_report(res);
  EXPECT_NE(util.find("messages 1 (16 bytes)"), std::string::npos);
  const std::string traffic = mx::traffic_report(res);
  EXPECT_NE(traffic.find("communication matrix (rows"), std::string::npos);
}

TEST(Report, AnalyzersWorkOnMergedThreadedTraceWithStealing) {
  // A traced threaded run produces its spans/waits/steals through the
  // per-worker shards and merge_concurrent(); the analyzers must see one
  // coherent run. The loop is heavily imbalanced (all work in rank 0's
  // static block) so with stealing on, steals are all but certain — but
  // scheduling is not deterministic, so steal assertions are conditional.
  auto cfg = mx::MachineConfig::paragon(4);
  cfg.backend = fxpar::exec::BackendKind::Threads;
  cfg.trace = true;
  cfg.work_stealing = true;
  mx::Machine m(cfg);
  constexpr std::int64_t kN = 1 << 12;
  std::vector<double> out(static_cast<std::size_t>(kN), 0.0);
  double* o = out.data();
  const mx::RunResult res = m.run([o](mx::Context& ctx) {
    auto sp = ctx.span("imbalanced", "loop");
    fxpar::core::parallel_for(ctx, 0, kN, [o](std::int64_t i) {
      double acc = static_cast<double>(i);
      const int reps = i < kN / 4 ? 400 : 1;
      for (int r = 0; r < reps; ++r) acc = acc * 1.0000001 + 1e-9;
      o[i] = acc;
    });
  });
  ASSERT_NE(res.trace, nullptr);
  const tr::TraceRecorder& rec = *res.trace;

  // Merged spans: every worker contributed its root and the named span.
  int named = 0;
  for (const tr::Span& s : rec.spans()) {
    if (s.name == "imbalanced") ++named;
  }
  EXPECT_EQ(named, 4);

  const tr::PhaseReport rep = tr::phase_report(rec);
  EXPECT_GT(rep.makespan, 0.0);
  EXPECT_FALSE(rep.to_string().empty());

  const tr::CriticalPathReport cp = tr::critical_path(rec);
  EXPECT_GT(cp.makespan, 0.0);
  double steps = 0.0;
  for (const tr::PathStep& s : cp.steps) {
    EXPECT_GE(s.t1, s.t0);
    steps += s.duration();
  }
  // The walk tiles the time from 0 to the last *recorded* activity (the
  // run's finish is stamped after the join, so it can be slightly later).
  double last_activity = 0.0;
  for (int p = 0; p < rec.num_procs(); ++p) {
    last_activity = std::max(last_activity, rec.last_activity(p));
  }
  EXPECT_NEAR(steps, last_activity, 1e-9);
  EXPECT_LE(last_activity, cp.makespan + 1e-9);

  // RunResult's steal counters and the trace's merged steal stream agree.
  if (res.steals > 0) {
    EXPECT_EQ(rec.steals().size(), static_cast<std::size_t>(res.steals));
    const tr::PhaseStats* loop = nullptr;
    for (const tr::PhaseStats& p : rep.phases) {
      if (p.name == "imbalanced") loop = &p;
    }
    ASSERT_NE(loop, nullptr);
    EXPECT_EQ(loop->steals, res.steals);
    EXPECT_EQ(loop->stolen_iters, res.stolen_iters);
    EXPECT_NE(rep.to_string().find("steals stolen_iters"), std::string::npos);
  }
}
