// Tests for the machine run reports: summarize(), utilization_report(),
// and traffic_report() edge cases (empty runs, one processor, degenerate
// row/cell budgets) that previously risked division by zero.
#include <gtest/gtest.h>

#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "machine/report.hpp"

namespace mx = fxpar::machine;

namespace {

mx::RunResult make_result(std::vector<double> busy, double finish) {
  mx::RunResult res;
  res.finish_time = finish;
  for (double b : busy) {
    fxpar::runtime::ProcClock c;
    c.busy = b;
    c.now = finish;
    res.clocks.push_back(c);
  }
  return res;
}

}  // namespace

TEST(Report, SummarizeEmptyResultIsAllZero) {
  const mx::UtilizationSummary s = mx::summarize(mx::RunResult{});
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_busy_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.min_busy_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.max_busy_fraction, 0.0);
  EXPECT_EQ(s.least_busy_proc, -1);
  EXPECT_EQ(s.most_busy_proc, -1);
}

TEST(Report, SummarizeZeroMakespanDoesNotDivide) {
  // Clocks exist but no time passed (empty program).
  const mx::UtilizationSummary s = mx::summarize(make_result({0.0, 0.0}, 0.0));
  EXPECT_DOUBLE_EQ(s.mean_busy_fraction, 0.0);
}

TEST(Report, SummarizeComputesBusyFractions) {
  const mx::UtilizationSummary s = mx::summarize(make_result({1.0, 3.0, 2.0}, 4.0));
  EXPECT_DOUBLE_EQ(s.mean_busy_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.min_busy_fraction, 0.25);
  EXPECT_EQ(s.least_busy_proc, 0);
  EXPECT_DOUBLE_EQ(s.max_busy_fraction, 0.75);
  EXPECT_EQ(s.most_busy_proc, 1);
}

TEST(Report, UtilizationReportSingleProc) {
  const std::string rep = mx::utilization_report(make_result({2.0}, 4.0));
  EXPECT_NE(rep.find("mean busy 50%"), std::string::npos);
  EXPECT_NE(rep.find("proc 0"), std::string::npos);
}

TEST(Report, UtilizationReportEmptyClocks) {
  const std::string rep = mx::utilization_report(mx::RunResult{});
  EXPECT_NE(rep.find("machine utilization"), std::string::npos);
  EXPECT_NE(rep.find("messages 0"), std::string::npos);
}

TEST(Report, UtilizationReportClampsNonPositiveRowBudget) {
  // max_rows <= 0 must not divide by zero; it degrades to one row.
  const std::string rep = mx::utilization_report(make_result({1.0, 1.0}, 2.0), 0);
  EXPECT_NE(rep.find("procs 0-1"), std::string::npos);
  const std::string rep2 = mx::utilization_report(make_result({1.0, 1.0}, 2.0), -5);
  EXPECT_FALSE(rep2.empty());
}

TEST(Report, TrafficReportNamesTheConfigFlag) {
  const std::string rep = mx::traffic_report(make_result({1.0}, 1.0));
  EXPECT_NE(rep.find("MachineConfig::record_traffic = true"), std::string::npos);
}

TEST(Report, TrafficReportClampsNonPositiveCellBudget) {
  mx::RunResult res = make_result({1.0, 1.0}, 1.0);
  res.traffic = {0, 7, 7, 0};
  const std::string rep = mx::traffic_report(res, 0);
  EXPECT_NE(rep.find("communication matrix"), std::string::npos);
}

TEST(Report, ReportsAgreeWithALiveRun) {
  mx::MachineConfig cfg;
  cfg.num_procs = 2;
  cfg.record_traffic = true;
  cfg.stack_bytes = 128 * 1024;
  mx::Machine m(cfg);
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 1, mx::Payload(16));
    } else {
      (void)ctx.recv_phys(0, 1);
    }
  });
  const mx::UtilizationSummary s = mx::summarize(res);
  EXPECT_GT(s.makespan, 0.0);
  EXPECT_EQ(s.messages, 1u);
  const std::string util = mx::utilization_report(res);
  EXPECT_NE(util.find("messages 1 (16 bytes)"), std::string::npos);
  const std::string traffic = mx::traffic_report(res);
  EXPECT_NE(traffic.find("communication matrix (rows"), std::string::npos);
}
