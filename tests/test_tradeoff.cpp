// Tests for the latency-throughput tradeoff curve (ref [22]) and the
// utilization reporting helpers.
#include <gtest/gtest.h>

#include "machine/context.hpp"
#include "machine/report.hpp"
#include "sched/tradeoff.hpp"

namespace sc = fxpar::sched;
namespace mx = fxpar::machine;

namespace {

sc::PipelineModel overheady_model() {
  sc::PipelineModel m;
  auto stage = [](std::string name, double w, double o) {
    return sc::StageModel{std::move(name), [w, o](int p) {
                            return w / static_cast<double>(p) +
                                   o * static_cast<double>(p);
                          }};
  };
  m.stages = {stage("a", 12.0, 0.05), stage("b", 20.0, 0.05), stage("c", 8.0, 0.05)};
  m.transfer = [](int, int, int) { return 0.3; };
  return m;
}

}  // namespace

TEST(Tradeoff, CurveIsParetoOrdered) {
  const auto m = overheady_model();
  const auto curve = sc::latency_throughput_curve(m, 16, 20);
  ASSERT_GE(curve.size(), 2u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].mapping.throughput, curve[i - 1].mapping.throughput);
    EXPECT_GE(curve[i].mapping.latency + 1e-12, curve[i - 1].mapping.latency);
  }
}

TEST(Tradeoff, StartsAtDataParallelAndReachesMaxThroughput) {
  const auto m = overheady_model();
  const auto dp = sc::data_parallel_mapping(m, 16);
  const auto fastest = sc::max_throughput_mapping(m, 16);
  const auto curve = sc::latency_throughput_curve(m, 16, 20);
  ASSERT_FALSE(curve.empty());
  EXPECT_NEAR(curve.front().mapping.latency, dp.latency, 1e-9);
  EXPECT_NEAR(curve.back().mapping.throughput, fastest.throughput,
              0.05 * fastest.throughput);
}

TEST(Tradeoff, EveryPointMeetsItsDemand) {
  const auto m = overheady_model();
  for (const auto& pt : sc::latency_throughput_curve(m, 12, 16)) {
    EXPECT_GE(pt.mapping.throughput + 1e-9, pt.demand);
    EXPECT_LE(pt.mapping.total_procs(), 12);
  }
}

TEST(Tradeoff, TooFewPointsRejected) {
  const auto m = overheady_model();
  EXPECT_THROW(sc::latency_throughput_curve(m, 8, 1), std::invalid_argument);
}

TEST(Report, SummarizeComputesBusyFractions) {
  mx::RunResult r;
  r.finish_time = 10.0;
  r.clocks.resize(2);
  r.clocks[0].busy = 10.0;
  r.clocks[1].busy = 5.0;
  r.messages = 3;
  r.bytes = 100;
  r.barriers = 2;
  const auto s = mx::summarize(r);
  EXPECT_DOUBLE_EQ(s.mean_busy_fraction, 0.75);
  EXPECT_DOUBLE_EQ(s.max_busy_fraction, 1.0);
  EXPECT_EQ(s.most_busy_proc, 0);
  EXPECT_DOUBLE_EQ(s.min_busy_fraction, 0.5);
  EXPECT_EQ(s.least_busy_proc, 1);
  EXPECT_EQ(s.messages, 3u);
}

TEST(Report, EmptyRunIsSafe) {
  mx::RunResult r;
  const auto s = mx::summarize(r);
  EXPECT_DOUBLE_EQ(s.mean_busy_fraction, 0.0);
  EXPECT_FALSE(mx::utilization_report(r).empty());
}

TEST(Report, RendersOneBarPerProcessor) {
  mx::RunResult r;
  r.finish_time = 4.0;
  r.clocks.resize(3);
  r.clocks[0].busy = 4.0;
  r.clocks[1].busy = 2.0;
  r.clocks[2].busy = 0.0;
  const auto text = mx::utilization_report(r);
  EXPECT_NE(text.find("proc 0"), std::string::npos);
  EXPECT_NE(text.find("100%"), std::string::npos);
  EXPECT_NE(text.find("50%"), std::string::npos);
  EXPECT_NE(text.find("0%"), std::string::npos);
}

TEST(Report, GroupsRowsForLargeMachines) {
  mx::RunResult r;
  r.finish_time = 1.0;
  r.clocks.resize(64);
  for (auto& c : r.clocks) c.busy = 0.5;
  const auto text = mx::utilization_report(r, 8);
  EXPECT_NE(text.find("procs 0-7"), std::string::npos);
  EXPECT_EQ(text.find("proc 0 "), std::string::npos);  // no per-proc rows
}

TEST(Report, FromRealRun) {
  mx::Machine m(mx::MachineConfig::ideal(4));
  auto res = m.run([](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) ctx.charge(2.0);
    ctx.barrier();
  });
  const auto s = mx::summarize(res);
  EXPECT_GT(s.max_busy_fraction, 0.9);
  EXPECT_LT(s.min_busy_fraction, 0.1);
  EXPECT_EQ(s.barriers, 4u);
}

TEST(Report, TrafficHeatMapRendersBlocks) {
  auto cfg = mx::MachineConfig::ideal(4);
  cfg.record_traffic = true;
  mx::Machine m(cfg);
  auto res = m.run([](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 1, fxpar::machine::Payload(1000));
    } else if (ctx.phys_rank() == 1) {
      ctx.recv_phys(0, 1);
    }
  });
  const auto text = mx::traffic_report(res);
  EXPECT_NE(text.find("communication matrix"), std::string::npos);
  EXPECT_NE(text.find("9"), std::string::npos);  // the peak cell
}

TEST(Report, TrafficNoteWhenNotRecorded) {
  mx::Machine m(mx::MachineConfig::ideal(2));
  auto res = m.run([](mx::Context&) {});
  EXPECT_NE(mx::traffic_report(res).find("not recorded"), std::string::npos);
}
