// Cross-application property sweeps: every legal mapping shape of every
// stream application must reproduce the sequential reference exactly,
// across machine sizes — the model's sequential-equivalence promise, tested
// wholesale.
#include <gtest/gtest.h>

#include "apps/ffthist.hpp"
#include "apps/radar.hpp"
#include "apps/stereo.hpp"

namespace ap = fxpar::apps;
using fxpar::MachineConfig;

namespace {

MachineConfig paragon(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

/// Mapping shapes to sweep, parameterized by a total processor budget P
/// (P is always a multiple of 4) and the stage count S.
std::vector<std::vector<ap::StreamModule>> mapping_shapes(int P, int S) {
  std::vector<std::vector<ap::StreamModule>> shapes;
  shapes.push_back({{0, S - 1, P, 1}});          // data parallel
  shapes.push_back({{0, S - 1, P / 2, 2}});      // replicated x2
  shapes.push_back({{0, S - 1, P / 4, 4}});      // replicated x4
  shapes.push_back({{0, 0, P / 2, 1}, {1, S - 1, P / 2, 1}});  // 2-module pipe
  shapes.push_back({{0, 0, P / 4, 1}, {1, S - 1, P / 4, 3}});  // hybrid
  return shapes;
}

}  // namespace

class MappingSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int procs() const { return std::get<0>(GetParam()); }
  int shape_id() const { return std::get<1>(GetParam()); }
};

TEST_P(MappingSweep, FftHistAlwaysMatchesReference) {
  ap::FftHistConfig cfg;
  cfg.n = 16;
  cfg.bins = 8;
  cfg.num_sets = 5;
  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);
  const auto shapes = mapping_shapes(procs(), 3);
  ap::run_stream_pipeline<ap::Complex>(paragon(procs()), stages,
                                       shapes[static_cast<std::size_t>(shape_id())],
                                       cfg.num_sets);
  for (int k = 0; k < cfg.num_sets; ++k) {
    ASSERT_EQ(sink[static_cast<std::size_t>(k)], ap::ffthist_reference(cfg, k))
        << "set " << k << " procs " << procs() << " shape " << shape_id();
  }
}

TEST_P(MappingSweep, RadarAlwaysMatchesReference) {
  ap::RadarConfig cfg;
  cfg.samples = 32;
  cfg.channels = 5;
  cfg.num_sets = 4;
  std::vector<std::int64_t> sink;
  const auto stages = ap::radar_stages(cfg, &sink);
  const auto shapes = mapping_shapes(procs(), 4);
  ap::run_stream_pipeline<ap::Complex>(paragon(procs()), stages,
                                       shapes[static_cast<std::size_t>(shape_id())],
                                       cfg.num_sets);
  for (int k = 0; k < cfg.num_sets; ++k) {
    ASSERT_EQ(sink[static_cast<std::size_t>(k)], ap::radar_reference(cfg, k))
        << "dwell " << k << " procs " << procs() << " shape " << shape_id();
  }
}

TEST_P(MappingSweep, StereoAlwaysMatchesReference) {
  ap::StereoConfig cfg;
  cfg.height = 12;
  cfg.width = 10;
  cfg.disparities = 4;
  cfg.num_sets = 3;
  std::vector<std::int64_t> sink;
  const auto stages = ap::stereo_stages(cfg, &sink);
  const auto shapes = mapping_shapes(procs(), 4);
  ap::run_stream_pipeline<float>(paragon(procs()), stages,
                                 shapes[static_cast<std::size_t>(shape_id())], cfg.num_sets);
  for (int k = 0; k < cfg.num_sets; ++k) {
    ASSERT_EQ(sink[static_cast<std::size_t>(k)], ap::stereo_reference(cfg, k))
        << "frame " << k << " procs " << procs() << " shape " << shape_id();
  }
}

INSTANTIATE_TEST_SUITE_P(ProcsByShapes, MappingSweep,
                         ::testing::Combine(::testing::Values(4, 8, 12),
                                            ::testing::Values(0, 1, 2, 3, 4)));
