// End-to-end tests of the fxlang interpreter: the paper's directives
// executed from source text on the simulated machine.
#include <gtest/gtest.h>

#include "lang/interp.hpp"
#include "machine/config.hpp"

namespace lg = fxpar::lang;
namespace mx = fxpar::machine;

namespace {

mx::MachineConfig cfg(int p) {
  auto c = mx::MachineConfig::ideal(p);
  c.stack_bytes = 512 * 1024;
  return c;
}

lg::FxRunResult run(int procs, const std::string& src) { return lg::run_source(cfg(procs), src); }

}  // namespace

TEST(FxLang, ScalarArithmeticAndPrint) {
  const auto res = run(2, "INTEGER x\nx = 2 + 3 * 4\nPRINT x\n");
  ASSERT_EQ(res.output.size(), 1u);
  EXPECT_EQ(res.output[0], "14");
}

TEST(FxLang, DoLoopAccumulates) {
  const auto res = run(2, R"(
INTEGER i, s
s = 0
DO i = 1, 10
  s = s + i
END DO
PRINT s
)");
  ASSERT_EQ(res.output.size(), 1u);
  EXPECT_EQ(res.output[0], "55");
}

TEST(FxLang, IfElse) {
  const auto res = run(1, R"(
INTEGER x
x = 7
IF x > 5 THEN
  PRINT 1
ELSE
  PRINT 0
END IF
IF x == 7 THEN
  PRINT 2
END IF
)");
  ASSERT_EQ(res.output.size(), 2u);
  EXPECT_EQ(res.output[0], "1");
  EXPECT_EQ(res.output[1], "2");
}

TEST(FxLang, ElementwiseArrayAssignAndSum) {
  const auto res = run(4, R"(
ARRAY a(10)
DISTRIBUTE a(BLOCK)
a = INDEX(1) * 2
PRINT SUM(a)
)");
  ASSERT_EQ(res.output.size(), 1u);
  EXPECT_EQ(res.output[0], "90");  // 2 * (0+..+9)
}

TEST(FxLang, MinvalMaxval) {
  const auto res = run(3, R"(
ARRAY a(7)
DISTRIBUTE a(CYCLIC)
a = 10 - INDEX(1)
PRINT MINVAL(a)
PRINT MAXVAL(a)
)");
  ASSERT_EQ(res.output.size(), 2u);
  EXPECT_EQ(res.output[0], "4");
  EXPECT_EQ(res.output[1], "10");
}

TEST(FxLang, TwoDimensionalArrays) {
  const auto res = run(4, R"(
ARRAY m(4, 6)
DISTRIBUTE m(BLOCK, *)
m = INDEX(1) * 100 + INDEX(2)
PRINT SUM(m)
PRINT MAXVAL(m)
)");
  ASSERT_EQ(res.output.size(), 2u);
  // sum = 100*6*(0+1+2+3) + 4*(0+..+5) = 3600 + 60.
  EXPECT_EQ(res.output[0], "3660");
  EXPECT_EQ(res.output[1], "305");
}

TEST(FxLang, TaskPartitionAndOnSubgroup) {
  const auto res = run(6, R"(
TASK_PARTITION part :: small(2), big(NPROCS() - 2)
BEGIN TASK_REGION part
ON SUBGROUP small
  PRINT 100 + NPROCS()
END ON
ON SUBGROUP big
  PRINT 200 + NPROCS()
END ON
END TASK_REGION
)");
  ASSERT_EQ(res.output.size(), 2u);
  // Both subgroup leaders print; order by virtual time is deterministic.
  EXPECT_NE(std::find(res.output.begin(), res.output.end(), "102"), res.output.end());
  EXPECT_NE(std::find(res.output.begin(), res.output.end(), "204"), res.output.end());
}

TEST(FxLang, SubgroupArraysAndRedistribution) {
  // The Section 2.1 example, in the language itself.
  const auto res = run(6, R"(
PROGRAM section21
  TASK_PARTITION mypart :: some(2), many(NPROCS() - 2)
  ARRAY some_low(12), many_low(12), many_high(12)
  SUBGROUP(some) :: some_low
  SUBGROUP(many) :: many_low, many_high
  DISTRIBUTE some_low(BLOCK), many_low(BLOCK), many_high(BLOCK)
  BEGIN TASK_REGION mypart
    ON SUBGROUP some
      some_low = INDEX(1) * 3
    END ON
    many_low = some_low
    ON SUBGROUP many
      many_high = many_low + 1
      PRINT SUM(many_high)
    END ON
  END TASK_REGION
END
)");
  ASSERT_EQ(res.output.size(), 1u);
  // sum(3i + 1, i=0..11) = 3*66 + 12 = 210.
  EXPECT_EQ(res.output[0], "210");
}

TEST(FxLang, PipelinedLoopOverlapsSubgroups) {
  // A two-stage pipeline in the language: with ON-block skipping and the
  // minimal-subset assignment, the makespan is far below the serial sum.
  auto pcfg = mx::MachineConfig::ideal(4);
  pcfg.stack_bytes = 512 * 1024;
  pcfg.flop_time = 1e-3;  // make stage work visible
  const std::string src = R"(
INTEGER i
TASK_PARTITION part :: pa(2), pb(2)
ARRAY a(64), b(64)
SUBGROUP(pa) :: a
SUBGROUP(pb) :: b
DISTRIBUTE a(BLOCK), b(BLOCK)
BEGIN TASK_REGION part
DO i = 1, 8
  ON SUBGROUP pa
    a = INDEX(1) + i
  END ON
  b = a
  ON SUBGROUP pb
    b = b * 2
  END ON
END DO
END TASK_REGION
)";
  const auto res = lg::run_source(pcfg, src);
  // Each stage does 32 elements x ~3 ops x 1ms = ~0.1 s per iteration side;
  // serialized would be ~2x that per iteration. Overlap must show.
  const double serial_estimate = 8 * 2 * 32 * 3 * 1e-3;
  EXPECT_LT(res.machine_result.finish_time, 0.8 * serial_estimate);
}

TEST(FxLang, NestedPartitionInsideOnBlock) {
  // Dynamic nesting: a partition of the current subgroup declared inside an
  // ON block (the paper's recursive pattern).
  const auto res = run(8, R"(
TASK_PARTITION outer :: left(4), right(4)
BEGIN TASK_REGION outer
ON SUBGROUP left
  TASK_PARTITION inner :: a(2), b(2)
  BEGIN TASK_REGION inner
  ON SUBGROUP a
    PRINT 10 + NPROCS()
  END ON
  END TASK_REGION
END ON
END TASK_REGION
)");
  ASSERT_EQ(res.output.size(), 1u);
  EXPECT_EQ(res.output[0], "12");
}

TEST(FxLang, BarrierStatementRuns) {
  const auto res = run(3, "BARRIER\nPRINT 1\n");
  ASSERT_EQ(res.output.size(), 1u);
}

TEST(FxLang, ModelViolationsAreDiagnosed) {
  // ON outside a task region.
  EXPECT_THROW(run(4, "TASK_PARTITION p :: a(2), b(2)\nON SUBGROUP a\nEND ON\n"),
               std::runtime_error);
  // Elementwise use of an unaligned array.
  EXPECT_THROW(run(4, R"(
ARRAY x(8), y(8)
DISTRIBUTE x(BLOCK), y(CYCLIC)
x = y + 1
)"),
               std::runtime_error);
  // Cross-subgroup assignment from inside an ON block (locality rule).
  EXPECT_THROW(run(4, R"(
TASK_PARTITION p :: g1(2), g2(2)
ARRAY a(8), b(8)
SUBGROUP(g1) :: a
SUBGROUP(g2) :: b
BEGIN TASK_REGION p
ON SUBGROUP g1
  b = a
END ON
END TASK_REGION
)"),
               std::runtime_error);
  // Undeclared identifier.
  EXPECT_THROW(run(2, "PRINT nope\n"), std::runtime_error);
  // Whole array in scalar context.
  EXPECT_THROW(run(2, "ARRAY a(4)\nPRINT a\n"), std::runtime_error);
}

TEST(FxLang, PartitionSizesMustCoverProcessors) {
  EXPECT_THROW(run(4, "TASK_PARTITION p :: a(2), b(3)\n"), std::invalid_argument);
}

TEST(FxLang, DeterministicOutputOrder) {
  const std::string src = R"(
TASK_PARTITION p :: g1(2), g2(2)
BEGIN TASK_REGION p
ON SUBGROUP g1
  PRINT 1
END ON
ON SUBGROUP g2
  PRINT 2
END ON
END TASK_REGION
)";
  const auto a = run(4, src);
  const auto b = run(4, src);
  EXPECT_EQ(a.output, b.output);
  EXPECT_DOUBLE_EQ(a.machine_result.finish_time, b.machine_result.finish_time);
}

TEST(FxLang, SubroutineCallWithScalarArgs) {
  const auto res = run(2, R"(
INTEGER x
x = 5
CALL double_it(x + 1)
PRINT x
END
SUBROUTINE double_it(v)
  PRINT v * 2
END SUBROUTINE
)");
  ASSERT_EQ(res.output.size(), 2u);
  EXPECT_EQ(res.output[0], "12");  // subroutine prints first
  EXPECT_EQ(res.output[1], "5");   // caller's x untouched (by value)
}

TEST(FxLang, SubroutineArraysPassByReference) {
  const auto res = run(4, R"(
ARRAY a(8)
DISTRIBUTE a(BLOCK)
a = 1
CALL scale(a, 3)
PRINT SUM(a)
END
SUBROUTINE scale(arr, factor)
  arr = arr * factor
END SUBROUTINE
)");
  ASSERT_EQ(res.output.size(), 1u);
  EXPECT_EQ(res.output[0], "24");  // 8 elements x 3
}

TEST(FxLang, RecursiveNestedPartitions) {
  // Figure 4's skeleton: a subroutine recursively halves its processor
  // group with its own TASK_PARTITION until one processor remains.
  const auto res = run(8, R"(
CALL recurse(0)
END
SUBROUTINE recurse(depth)
  IF NPROCS() == 1 THEN
    PRINT depth
  ELSE
    TASK_PARTITION half :: lo(NPROCS()/2), hi(NPROCS() - NPROCS()/2)
    BEGIN TASK_REGION half
    ON SUBGROUP lo
      CALL recurse(depth + 1)
    END ON
    ON SUBGROUP hi
      CALL recurse(depth + 1)
    END ON
    END TASK_REGION
  END IF
END SUBROUTINE
)");
  ASSERT_EQ(res.output.size(), 8u);  // every leaf processor prints
  for (const auto& line : res.output) EXPECT_EQ(line, "3");  // log2(8) levels
}

TEST(FxLang, ElementAssignmentAndIndexedRead) {
  const auto res = run(4, R"(
ARRAY a(8)
INTEGER i
DISTRIBUTE a(BLOCK)
a = 0
DO i = 0, 7
  a(i) = i * i
END DO
PRINT a(5)
PRINT a(0) + a(7)
)");
  ASSERT_EQ(res.output.size(), 2u);
  EXPECT_EQ(res.output[0], "25");
  EXPECT_EQ(res.output[1], "49");
}

TEST(FxLang, IndexedReadInElementwiseContextMustBeLocal) {
  // a(INDEX(1)) is local (same layout); a(0) generally is not.
  const auto ok = run(4, R"(
ARRAY a(8), b(8)
DISTRIBUTE a(BLOCK), b(BLOCK)
a = INDEX(1) + 1
b = a(INDEX(1)) * 2
PRINT SUM(b)
)");
  ASSERT_EQ(ok.output.size(), 1u);
  EXPECT_EQ(ok.output[0], "72");  // 2 * sum(1..8)
  EXPECT_THROW(run(4, R"(
ARRAY a(8), b(8)
DISTRIBUTE a(BLOCK), b(BLOCK)
a = 1
b = a(0)
)"),
               std::runtime_error);
}

TEST(FxLang, SubroutineSeesOnlyItsParameters) {
  EXPECT_THROW(run(2, R"(
INTEGER hidden
hidden = 3
CALL peek()
END
SUBROUTINE peek()
  PRINT hidden
END SUBROUTINE
)"),
               std::runtime_error);
}

TEST(FxLang, RunawayRecursionDiagnosed) {
  EXPECT_THROW(run(2, R"(
CALL forever(0)
END
SUBROUTINE forever(x)
  CALL forever(x + 1)
END SUBROUTINE
)"),
               std::runtime_error);
}

TEST(FxLang, CallArityChecked) {
  EXPECT_THROW(run(2, "CALL f(1, 2)\nEND\nSUBROUTINE f(a)\nPRINT a\nEND SUBROUTINE\n"),
               std::runtime_error);
}
