// Tests for the mapping algorithms of refs [21][22]: data parallel
// baseline, max-throughput grouping, and latency-optimal mapping under a
// throughput constraint (with replication), checked against brute force on
// small instances.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sched/pipeline.hpp"

namespace sc = fxpar::sched;

namespace {

// Amdahl-ish stage: work w with parallel fraction f and per-proc overhead.
sc::StageModel stage(std::string name, double w, double overhead_per_proc = 0.0,
                     int cap = 1 << 30) {
  return sc::StageModel{
      std::move(name), [=](int p) {
        const int q = std::min(p, cap);
        return w / static_cast<double>(q) + overhead_per_proc * static_cast<double>(q);
      }};
}

sc::PipelineModel three_stage_model() {
  sc::PipelineModel m;
  m.stages = {stage("s0", 12.0), stage("s1", 24.0), stage("s2", 6.0)};
  m.transfer = [](int, int, int) { return 0.5; };
  return m;
}

}  // namespace

TEST(PipelineModel, ModuleTimeSumsStagesAndInternalTransfers) {
  const auto m = three_stage_model();
  EXPECT_DOUBLE_EQ(m.stage_time(0, 4), 3.0);
  EXPECT_DOUBLE_EQ(m.module_time(0, 0, 4), 3.0);
  // Stages 0..1 on 4 procs: 3 + 0.5 + 6 = 9.5.
  EXPECT_DOUBLE_EQ(m.module_time(0, 1, 4), 9.5);
  // All stages on 2 procs: 6 + .5 + 12 + .5 + 3 = 22.
  EXPECT_DOUBLE_EQ(m.module_time(0, 2, 2), 22.0);
}

TEST(PipelineModel, Errors) {
  const auto m = three_stage_model();
  EXPECT_THROW(m.stage_time(3, 1), std::out_of_range);
  EXPECT_THROW(m.stage_time(0, 0), std::invalid_argument);
  EXPECT_THROW(m.module_time(1, 0, 1), std::out_of_range);
}

TEST(DataParallelMapping, OneModuleAllProcs) {
  const auto m = three_stage_model();
  const auto dp = sc::data_parallel_mapping(m, 8);
  ASSERT_EQ(dp.modules.size(), 1u);
  EXPECT_EQ(dp.modules[0].procs, 8);
  EXPECT_EQ(dp.modules[0].instances, 1);
  // latency = 12/8 + .5 + 24/8 + .5 + 6/8 = 6.25; throughput = 1/6.25.
  EXPECT_DOUBLE_EQ(dp.latency, 6.25);
  EXPECT_DOUBLE_EQ(dp.throughput, 1.0 / 6.25);
}

TEST(MaxThroughput, BeatsDataParallelOnOverheadyStages) {
  // With per-proc overhead, DP on all procs is slow; pipelining wins.
  sc::PipelineModel m;
  m.stages = {stage("a", 10.0, 0.4), stage("b", 10.0, 0.4)};
  const auto dp = sc::data_parallel_mapping(m, 16);
  const auto best = sc::max_throughput_mapping(m, 16);
  EXPECT_GE(best.throughput, dp.throughput);
  EXPECT_GT(best.modules.size(), 1u);
}

TEST(MaxThroughput, MatchesBruteForceSmall) {
  const auto m = three_stage_model();
  const int P = 6;
  const auto best = sc::max_throughput_mapping(m, P);
  // Brute force over all contiguous groupings and allocations.
  double brute = 0.0;
  for (int cut1 = 0; cut1 <= 2; ++cut1) {      // module boundaries after stage cut
    for (int cut2 = cut1; cut2 <= 2; ++cut2) {
      // modules: [0..cut1], (cut1..cut2], (cut2..2] (degenerate when equal)
      std::vector<std::pair<int, int>> mods;
      mods.push_back({0, cut1});
      if (cut2 > cut1) mods.push_back({cut1 + 1, cut2});
      if (2 > cut2) mods.push_back({cut2 + 1, 2});
      // enumerate allocations
      const int k = static_cast<int>(mods.size());
      std::vector<int> alloc(static_cast<std::size_t>(k), 1);
      auto enumerate = [&](auto&& self, int idx, int left) -> void {
        if (idx == k - 1) {
          alloc[static_cast<std::size_t>(idx)] = left;
          double bottleneck = 0.0;
          for (int j = 0; j < k; ++j) {
            bottleneck = std::max(
                bottleneck, m.service_time(mods[static_cast<std::size_t>(j)].first,
                                           mods[static_cast<std::size_t>(j)].second,
                                           alloc[static_cast<std::size_t>(j)]));
          }
          brute = std::max(brute, 1.0 / bottleneck);
          return;
        }
        for (int p = 1; p <= left - (k - idx - 1); ++p) {
          alloc[static_cast<std::size_t>(idx)] = p;
          self(self, idx + 1, left - p);
        }
      };
      enumerate(enumerate, 0, P);
    }
  }
  EXPECT_NEAR(best.throughput, brute, 1e-12);
}

TEST(MinLatency, UnconstrainedEqualsDataParallel) {
  // With no throughput requirement the latency-optimal mapping is the pure
  // data parallel one (all processors on every stage).
  const auto m = three_stage_model();
  const auto opt = sc::min_latency_mapping(m, 8, 0.0);
  const auto dp = sc::data_parallel_mapping(m, 8);
  EXPECT_NEAR(opt.latency, dp.latency, 1e-12);
}

TEST(MinLatency, ConstraintForcesReplicationOrPipelining) {
  sc::PipelineModel m;
  m.stages = {stage("a", 10.0, 0.5, 4), stage("b", 10.0, 0.5, 4)};  // cap 4
  const auto dp = sc::data_parallel_mapping(m, 16);
  // Demand twice the DP throughput; only replication can deliver it.
  const auto opt = sc::min_latency_mapping(m, 16, 2.0 * dp.throughput);
  ASSERT_FALSE(opt.modules.empty());
  EXPECT_GE(opt.throughput, 2.0 * dp.throughput - 1e-9);
  int total_instances = 0;
  for (const auto& mod : opt.modules) total_instances += mod.instances;
  EXPECT_GT(total_instances, static_cast<int>(opt.modules.size()));  // some replication
}

TEST(MinLatency, InfeasibleConstraintReturnsEmpty) {
  const auto m = three_stage_model();
  const auto opt = sc::min_latency_mapping(m, 2, 1e9);
  EXPECT_TRUE(opt.modules.empty());
  EXPECT_EQ(opt.throughput, 0.0);
}

TEST(MinLatency, RespectsProcessorBudget) {
  const auto m = three_stage_model();
  for (double rate : {0.1, 0.3, 0.6, 1.0}) {
    const auto opt = sc::min_latency_mapping(m, 10, rate);
    if (opt.modules.empty()) continue;
    EXPECT_LE(opt.total_procs(), 10);
    EXPECT_GE(opt.throughput, rate - 1e-9);
  }
}

TEST(MinLatency, LatencyMonotoneInConstraint) {
  // Stronger throughput demands can only increase (or keep) optimal latency.
  sc::PipelineModel m;
  m.stages = {stage("a", 8.0, 0.2), stage("b", 16.0, 0.2), stage("c", 4.0, 0.2)};
  m.transfer = [](int, int, int) { return 0.25; };
  double prev = 0.0;
  for (double rate = 0.05; rate < 2.0; rate *= 2.0) {
    const auto opt = sc::min_latency_mapping(m, 12, rate);
    if (opt.modules.empty()) break;
    EXPECT_GE(opt.latency + 1e-9, prev);
    prev = opt.latency;
  }
}

TEST(Mapping, EvaluateComputesThroughputAsBottleneck) {
  const auto m = three_stage_model();
  sc::PipelineMapping mp;
  mp.modules = {{0, 0, 2, 1}, {1, 1, 4, 2}, {2, 2, 1, 1}};
  sc::evaluate(m, mp);
  // Service times (compute + boundary handoffs): 6.5, 7, 6.5 ->
  // rates 1/6.5, 2/7, 1/6.5 -> throughput 1/6.5.
  EXPECT_DOUBLE_EQ(mp.throughput, 1.0 / 6.5);
  // Latency: 6 + .5 + 6 + .5 + 6 = 19 (transfers counted once).
  EXPECT_DOUBLE_EQ(mp.latency, 19.0);
}

TEST(Mapping, ServiceTimeAddsBoundaryTransfers) {
  const auto m = three_stage_model();
  // Middle stage on 4 procs: 6 compute + in/out transfers of 0.5 each.
  EXPECT_DOUBLE_EQ(m.service_time(1, 1, 4), 7.0);
  // First module: only the outgoing boundary.
  EXPECT_DOUBLE_EQ(m.service_time(0, 0, 4), 3.5);
  // Whole chain: no external boundaries.
  EXPECT_DOUBLE_EQ(m.service_time(0, 2, 4), m.module_time(0, 2, 4));
}

TEST(Mapping, ToStringListsModules) {
  const auto m = three_stage_model();
  sc::PipelineMapping mp;
  mp.modules = {{0, 1, 4, 2}, {2, 2, 1, 1}};
  const std::string s = mp.to_string(m);
  EXPECT_NE(s.find("s0+s1"), std::string::npos);
  EXPECT_NE(s.find("x2"), std::string::npos);
}

namespace {

// Exhaustive search over contiguous groupings, allocations and replication
// factors for small instances, mirroring the DP's cost accounting.
double brute_force_min_latency(const sc::PipelineModel& m, int P, double rate) {
  const int S = m.num_stages();
  double best = std::numeric_limits<double>::infinity();
  // Enumerate groupings via bitmask of boundaries after each stage.
  for (int cuts = 0; cuts < (1 << (S - 1)); ++cuts) {
    std::vector<std::pair<int, int>> mods;
    int start = 0;
    for (int s = 0; s < S; ++s) {
      if (s == S - 1 || (cuts >> s) & 1) {
        mods.push_back({start, s});
        start = s + 1;
      }
    }
    const int k = static_cast<int>(mods.size());
    // Enumerate (procs, instances) per module recursively.
    std::vector<std::pair<int, int>> alloc(static_cast<std::size_t>(k));
    auto rec = [&](auto&& self, int idx, int left) -> void {
      if (idx == k) {
        double latency = 0.0;
        for (int j = 0; j < k; ++j) {
          const auto [f, l] = mods[static_cast<std::size_t>(j)];
          const auto [p, r] = alloc[static_cast<std::size_t>(j)];
          const double service = m.service_time(f, l, p);
          if (rate > 0.0 && static_cast<double>(r) / service + 1e-12 < rate) return;
          latency += m.module_time(f, l, p) + (j > 0 ? m.transfer_time(f - 1, p, p) : 0.0);
        }
        best = std::min(best, latency);
        return;
      }
      for (int p = 1; p <= left; ++p) {
        for (int r = 1; p * r <= left; ++r) {
          alloc[static_cast<std::size_t>(idx)] = {p, r};
          self(self, idx + 1, left - p * r);
        }
      }
    };
    rec(rec, 0, P);
  }
  return best;
}

}  // namespace

TEST(MinLatency, MatchesBruteForceSmall) {
  sc::PipelineModel m;
  m.stages = {stage("x", 6.0, 0.3), stage("y", 10.0, 0.3)};
  m.transfer = [](int, int, int) { return 0.4; };
  for (int P : {3, 5, 6}) {
    const double dp_rate = sc::data_parallel_mapping(m, P).throughput;
    for (double factor : {0.5, 1.0, 1.5, 2.0}) {
      const double rate = factor * dp_rate;
      const auto opt = sc::min_latency_mapping(m, P, rate);
      const double brute = brute_force_min_latency(m, P, rate);
      if (opt.modules.empty()) {
        EXPECT_TRUE(std::isinf(brute)) << "P=" << P << " rate=" << rate;
      } else {
        EXPECT_NEAR(opt.latency, brute, 1e-9) << "P=" << P << " rate=" << rate;
      }
    }
  }
}

TEST(MinLatency, ThreeStageBruteForce) {
  const auto m = three_stage_model();
  const int P = 5;
  const double dp_rate = sc::data_parallel_mapping(m, P).throughput;
  for (double factor : {1.0, 1.3}) {
    const auto opt = sc::min_latency_mapping(m, P, factor * dp_rate);
    const double brute = brute_force_min_latency(m, P, factor * dp_rate);
    if (opt.modules.empty()) {
      EXPECT_TRUE(std::isinf(brute));
    } else {
      EXPECT_NEAR(opt.latency, brute, 1e-9) << "factor=" << factor;
    }
  }
}

TEST(MinLatencyTopology, PrefersNodeLocalModulesOnLatencyTies) {
  // One stage whose time is 4.0 on four processors but marginally better
  // (3.999) on eight: the flat optimizer takes the 0.025% win even though
  // an 8-wide module must span both nodes of a 2x4 machine; the
  // topology-aware variant treats it as a tie at 1% tolerance and keeps
  // the node-local 4-wide module.
  sc::PipelineModel m;
  m.stages = {sc::StageModel{"s", [](int p) {
                if (p >= 8) return 3.999;
                if (p >= 4) return 4.0;
                return 16.0 / static_cast<double>(p);
              }}};
  const auto flat = sc::min_latency_mapping(m, 8, 0.0);
  ASSERT_EQ(flat.modules.size(), 1u);
  EXPECT_EQ(flat.modules[0].procs, 8);

  const auto topo = fxpar::exec::HostTopology::synthetic(2, 4);
  const auto local = sc::min_latency_mapping(m, 8, 0.0, topo, 0.01);
  ASSERT_EQ(local.modules.size(), 1u);
  EXPECT_EQ(local.modules[0].procs, 4);
  // The tie-break never costs more than the tolerance.
  EXPECT_LE(local.latency, flat.latency * 1.01);

  // A single-node topology (nothing to localize) and a zero tolerance
  // (no ties admitted) both reproduce the plain mapping exactly.
  const auto one_node =
      sc::min_latency_mapping(m, 8, 0.0, fxpar::exec::HostTopology::synthetic(1, 8), 0.01);
  ASSERT_EQ(one_node.modules.size(), 1u);
  EXPECT_EQ(one_node.modules[0].procs, 8);
  const auto zero_tol = sc::min_latency_mapping(m, 8, 0.0, topo, 0.0);
  ASSERT_EQ(zero_tol.modules.size(), 1u);
  EXPECT_EQ(zero_tol.modules[0].procs, 8);
}

TEST(MinLatencyTopology, NoTiesMeansIdenticalMapping) {
  // Without latency ties the topology-aware overload is the plain DP.
  const auto m = three_stage_model();
  const auto topo = fxpar::exec::HostTopology::synthetic(2, 4);
  for (double rate : {0.0, 0.1, 0.2}) {
    const auto plain = sc::min_latency_mapping(m, 8, rate);
    const auto aware = sc::min_latency_mapping(m, 8, rate, topo, 1e-9);
    ASSERT_EQ(plain.modules.size(), aware.modules.size()) << "rate " << rate;
    for (std::size_t i = 0; i < plain.modules.size(); ++i) {
      EXPECT_EQ(plain.modules[i].first_stage, aware.modules[i].first_stage);
      EXPECT_EQ(plain.modules[i].last_stage, aware.modules[i].last_stage);
      EXPECT_EQ(plain.modules[i].procs, aware.modules[i].procs);
      EXPECT_EQ(plain.modules[i].instances, aware.modules[i].instances);
    }
    EXPECT_DOUBLE_EQ(plain.latency, aware.latency) << "rate " << rate;
  }
}

TEST(MemoryConstraint, UnconstrainedByDefault) {
  const auto m = three_stage_model();
  EXPECT_TRUE(m.module_fits(0, 2, 1));
}

TEST(MemoryConstraint, SmallModulesBecomeInfeasible) {
  sc::PipelineModel m = three_stage_model();
  // Each stage needs 100/p MB per node; nodes hold 60 MB: a module of k
  // stages needs p >= ceil(k * 100 / 60).
  m.stage_memory = [](int, int p) { return 100.0 / static_cast<double>(p); };
  m.node_memory = 60.0;
  EXPECT_FALSE(m.module_fits(0, 0, 1));
  EXPECT_TRUE(m.module_fits(0, 0, 2));
  EXPECT_FALSE(m.module_fits(0, 2, 4));
  EXPECT_TRUE(m.module_fits(0, 2, 5));
}

TEST(MemoryConstraint, MappingsRespectCapacity) {
  sc::PipelineModel m = three_stage_model();
  m.stage_memory = [](int, int p) { return 100.0 / static_cast<double>(p); };
  m.node_memory = 60.0;
  const auto best = sc::max_throughput_mapping(m, 12);
  for (const auto& mod : best.modules) {
    EXPECT_TRUE(m.module_fits(mod.first_stage, mod.last_stage, mod.procs));
  }
  const auto opt = sc::min_latency_mapping(m, 12, 0.01);
  ASSERT_FALSE(opt.modules.empty());
  for (const auto& mod : opt.modules) {
    EXPECT_TRUE(m.module_fits(mod.first_stage, mod.last_stage, mod.procs));
  }
}

TEST(MemoryConstraint, ImpossibleCapacityMakesEverythingInfeasible) {
  sc::PipelineModel m = three_stage_model();
  m.stage_memory = [](int, int) { return 100.0; };  // does not shrink with p
  m.node_memory = 10.0;
  EXPECT_THROW(sc::max_throughput_mapping(m, 8), std::logic_error);
  const auto opt = sc::min_latency_mapping(m, 8, 0.0);
  EXPECT_TRUE(opt.modules.empty());
}

TEST(MinLatency, InfeasibilityIsExplicitOnBothOverloads) {
  // Serving drivers promise an SLO on the strength of `feasible`; an
  // unreachable constraint must say so on the plain and topology-aware
  // overloads alike, echoing the constraint it could not meet.
  const auto m = three_stage_model();
  const double ask = 1e9;
  const auto plain = sc::min_latency_mapping(m, 2, ask);
  EXPECT_FALSE(plain.feasible);
  EXPECT_TRUE(plain.modules.empty());
  EXPECT_EQ(plain.throughput, 0.0);
  EXPECT_DOUBLE_EQ(plain.required_throughput, ask);

  const auto topo = fxpar::exec::HostTopology::synthetic(2, 1);
  const auto aware = sc::min_latency_mapping(m, 2, ask, topo, 0.01);
  EXPECT_FALSE(aware.feasible);
  EXPECT_TRUE(aware.modules.empty());
  EXPECT_EQ(aware.throughput, 0.0);
  EXPECT_DOUBLE_EQ(aware.required_throughput, ask);

  // A met constraint reports feasible and actually satisfies it.
  const auto dp = sc::data_parallel_mapping(m, 8);
  const auto ok = sc::min_latency_mapping(m, 8, dp.throughput);
  EXPECT_TRUE(ok.feasible);
  EXPECT_GE(ok.throughput, dp.throughput * (1.0 - 1e-9));
  const auto ok_aware = sc::min_latency_mapping(m, 8, dp.throughput,
                                                fxpar::exec::HostTopology::synthetic(2, 4));
  EXPECT_TRUE(ok_aware.feasible);
  EXPECT_GE(ok_aware.throughput, dp.throughput * (1.0 - 1e-9));

  // Unconstrained constructors are feasible by construction.
  EXPECT_TRUE(dp.feasible);
  EXPECT_TRUE(sc::max_throughput_mapping(m, 8).feasible);
}

TEST(MinLatency, GarbageConstraintThrowsInsteadOfOptimizing) {
  const auto m = three_stage_model();
  const auto topo = fxpar::exec::HostTopology::synthetic(2, 4);
  for (double bad : {-1.0, std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_THROW(sc::min_latency_mapping(m, 8, bad), std::invalid_argument);
    EXPECT_THROW(sc::min_latency_mapping(m, 8, bad, topo, 0.01), std::invalid_argument);
  }
}
