// Tests for the Barnes-Hut application: tree invariants, force accuracy
// against direct summation, exact equivalence of the nested task parallel
// computation with the sequential traversal, and worklist behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/barneshut.hpp"

namespace ap = fxpar::apps;
using fxpar::MachineConfig;

namespace {

MachineConfig paragon(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 512 * 1024;
  return c;
}

double norm3(const std::array<double, 3>& v) {
  return std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
}

}  // namespace

TEST(BhTree, BalancedSplitCoversAllParticles) {
  ap::BhConfig cfg;
  cfg.n = 200;
  cfg.leaf_size = 4;
  ap::BhTree tree(ap::bh_particles(cfg), cfg.leaf_size);
  const auto& root = tree.root();
  EXPECT_EQ(root.lo, 0);
  EXPECT_EQ(root.hi, 200);
  // Every internal node splits at the midpoint; leaves are small.
  for (const auto& n : tree.nodes()) {
    if (!n.leaf()) {
      const auto& l = tree.nodes()[static_cast<std::size_t>(n.left)];
      const auto& r = tree.nodes()[static_cast<std::size_t>(n.right)];
      EXPECT_EQ(l.lo, n.lo);
      EXPECT_EQ(r.hi, n.hi);
      EXPECT_EQ(l.hi, r.lo);
      EXPECT_EQ(l.hi - l.lo, (n.hi - n.lo) / 2);
    } else {
      EXPECT_LE(n.hi - n.lo, cfg.leaf_size);
    }
  }
}

TEST(BhTree, MassAndComConsistent) {
  ap::BhConfig cfg;
  cfg.n = 64;
  ap::BhTree tree(ap::bh_particles(cfg), cfg.leaf_size);
  for (const auto& n : tree.nodes()) {
    if (n.leaf()) continue;
    const auto& l = tree.nodes()[static_cast<std::size_t>(n.left)];
    const auto& r = tree.nodes()[static_cast<std::size_t>(n.right)];
    EXPECT_NEAR(n.mass, l.mass + r.mass, 1e-9);
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(n.mass * n.com[d], l.mass * l.com[d] + r.mass * r.com[d], 1e-9);
      EXPECT_GE(n.com[d], n.bb_min[d] - 1e-12);
      EXPECT_LE(n.com[d], n.bb_max[d] + 1e-12);
    }
  }
}

TEST(BhTree, ThetaZeroEqualsDirectSummation) {
  ap::BhConfig cfg;
  cfg.n = 128;
  cfg.theta = 0.0;  // never approximate
  ap::BhTree tree(ap::bh_particles(cfg), cfg.leaf_size);
  std::int64_t visited = 0;
  for (std::int64_t i = 0; i < cfg.n; i += 7) {
    const auto bh = tree.force_on(i, 0, cfg.n, 64, cfg.theta, cfg.eps, visited);
    ASSERT_TRUE(bh.has_value());
    const auto direct = tree.direct_force(i, cfg.eps);
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR((*bh)[d], direct[d], 1e-9 * (1.0 + std::abs(direct[d])));
    }
  }
}

TEST(BhTree, ApproximationErrorBoundedForModestTheta) {
  ap::BhConfig cfg;
  cfg.n = 256;
  cfg.theta = 0.4;
  ap::BhTree tree(ap::bh_particles(cfg), cfg.leaf_size);
  std::int64_t visited = 0;
  double worst = 0.0;
  for (std::int64_t i = 0; i < cfg.n; i += 11) {
    const auto bh = tree.force_on(i, 0, cfg.n, 64, cfg.theta, cfg.eps, visited);
    const auto direct = tree.direct_force(i, cfg.eps);
    std::array<double, 3> diff{(*bh)[0] - direct[0], (*bh)[1] - direct[1],
                               (*bh)[2] - direct[2]};
    worst = std::max(worst, norm3(diff) / (norm3(direct) + 1e-12));
  }
  EXPECT_LT(worst, 0.12);  // classic BH accuracy envelope for theta=0.4
}

TEST(BhTree, RestrictedVisibilityPutsParticlesOnWorklist) {
  ap::BhConfig cfg;
  cfg.n = 256;
  cfg.theta = 0.5;
  ap::BhTree tree(ap::bh_particles(cfg), cfg.leaf_size);
  std::int64_t visited = 0;
  // With k=0 (only the root replicated) and a narrow visible range, most
  // boundary particles cannot finish.
  int deferred = 0;
  for (std::int64_t i = 0; i < 32; ++i) {
    if (!tree.force_on(i, 0, 32, 0, cfg.theta, cfg.eps, visited).has_value()) deferred += 1;
  }
  EXPECT_GT(deferred, 0);
  // With full visibility nothing defers.
  for (std::int64_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(tree.force_on(i, 0, cfg.n, 0, cfg.theta, cfg.eps, visited).has_value());
  }
}

TEST(BarnesHut, ParallelForcesExactlyMatchSequential) {
  ap::BhConfig cfg;
  cfg.n = 512;
  cfg.theta = 0.6;
  const auto ref = ap::barneshut_reference(cfg);
  for (int p : {1, 2, 4, 8}) {
    const auto res = ap::run_barneshut(paragon(p), cfg);
    ASSERT_EQ(res.forces.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(res.forces[i][d], ref[i][d]) << "p=" << p << " particle " << i;
      }
    }
  }
}

TEST(BarnesHut, WorklistShrinksWithMoreReplicatedLevels) {
  // Paper: "the size of the worklist can be reduced by controlling the
  // number of replicated layers k".
  ap::BhConfig cfg;
  cfg.n = 2048;
  cfg.theta = 1.0;
  auto total_wl = [&](int k) {
    cfg.k_repl = k;
    const auto res = ap::run_barneshut(paragon(8), cfg);
    std::int64_t t = 0;
    for (auto v : res.worklist_per_level) t += v;
    return t;
  };
  const auto wl_k3 = total_wl(3);
  const auto wl_k9 = total_wl(9);
  EXPECT_GT(wl_k3, 0);
  EXPECT_LT(wl_k9, wl_k3);
}

TEST(BarnesHut, WorklistDrainsGoingUpTheRecursion) {
  // Each level retries its children's worklist against a twice-as-large
  // visible subtree, so the counts must decrease towards the root.
  ap::BhConfig cfg;
  cfg.n = 8192;
  cfg.theta = 1.0;
  cfg.k_repl = 12;
  const auto res = ap::run_barneshut(paragon(8), cfg);
  ASSERT_GE(res.worklist_per_level.size(), 2u);
  for (std::size_t l = 1; l < res.worklist_per_level.size(); ++l) {
    EXPECT_LE(res.worklist_per_level[l - 1], res.worklist_per_level[l])
        << "level " << l;  // index 0 is the root
  }
}

TEST(BarnesHut, WorklistGrowsSublinearly) {
  // The paper: for uniform particles the total worklist is O(n^(2/3)):
  // quadrupling n should far less than quadruple the worklist.
  ap::BhConfig cfg;
  cfg.theta = 1.0;
  cfg.k_repl = 12;
  auto total_wl = [&](std::int64_t n) {
    cfg.n = n;
    const auto res = ap::run_barneshut(paragon(8), cfg);
    std::int64_t t = 0;
    for (auto v : res.worklist_per_level) t += v;
    return t;
  };
  const auto small = total_wl(8192);
  const auto big = total_wl(32768);
  EXPECT_LT(static_cast<double>(big), 3.0 * static_cast<double>(small));
  // And the deferred *fraction* shrinks.
  EXPECT_LT(static_cast<double>(big) / 32768.0, static_cast<double>(small) / 8192.0);
}

TEST(BarnesHut, DeterministicAcrossRuns) {
  ap::BhConfig cfg;
  cfg.n = 256;
  const auto a = ap::run_barneshut(paragon(4), cfg);
  const auto b = ap::run_barneshut(paragon(4), cfg);
  EXPECT_EQ(a.forces, b.forces);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.worklist_per_level, b.worklist_per_level);
}

TEST(BarnesHut, ScalesInModeledTime) {
  ap::BhConfig cfg;
  cfg.n = 2048;
  const auto p1 = ap::run_barneshut(paragon(1), cfg);
  const auto p8 = ap::run_barneshut(paragon(8), cfg);
  EXPECT_LT(p8.makespan, p1.makespan);
}

TEST(BarnesHutSteps, MatchesSequentialDynamics) {
  ap::BhConfig cfg;
  cfg.n = 256;
  cfg.theta = 1.0;
  cfg.k_repl = 12;
  const auto ref = ap::barneshut_steps_reference(cfg, 3, 0.01);
  const auto res = ap::run_barneshut_steps(paragon(4), cfg, 3, 0.01);
  ASSERT_EQ(res.particles.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(res.particles[i].pos[d], ref[i].pos[d]) << "particle " << i;
    }
  }
  EXPECT_EQ(static_cast<int>(res.worklist_total_per_step.size()), 3);
}

TEST(BarnesHutSteps, ParticlesActuallyMove) {
  ap::BhConfig cfg;
  cfg.n = 128;
  const auto before = ap::bh_particles(cfg);
  const auto res = ap::run_barneshut_steps(paragon(2), cfg, 2, 0.05);
  double moved = 0.0;
  for (std::size_t i = 0; i < res.particles.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      moved += std::abs(res.particles[i].pos[d] - before[i].pos[d]);
    }
  }
  EXPECT_GT(moved, 0.0);
}

TEST(BarnesHutSteps, VirtualTimeAccumulatesAcrossSteps) {
  ap::BhConfig cfg;
  cfg.n = 256;
  const auto one = ap::run_barneshut_steps(paragon(4), cfg, 1, 0.01);
  const auto three = ap::run_barneshut_steps(paragon(4), cfg, 3, 0.01);
  EXPECT_GT(three.makespan, 2.0 * one.makespan);
}

TEST(BarnesHutSteps, RejectsBadStepCount) {
  ap::BhConfig cfg;
  cfg.n = 64;
  EXPECT_THROW(ap::run_barneshut_steps(paragon(2), cfg, 0, 0.01), std::invalid_argument);
}
