// Unit tests for the fiber substrate: guarded stacks and ucontext fibers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "runtime/fiber.hpp"
#include "runtime/stack.hpp"

namespace rt = fxpar::runtime;

TEST(FiberStack, AllocatesRequestedSize) {
  rt::FiberStack s(64 * 1024);
  EXPECT_NE(s.base(), nullptr);
  EXPECT_GE(s.size(), 64u * 1024u);
  EXPECT_EQ(s.size() % rt::FiberStack::page_size(), 0u);
}

TEST(FiberStack, RoundsUpToPageSize) {
  rt::FiberStack s(1);
  EXPECT_EQ(s.size(), rt::FiberStack::page_size());
}

TEST(FiberStack, MoveTransfersOwnership) {
  rt::FiberStack a(64 * 1024);
  void* base = a.base();
  rt::FiberStack b(std::move(a));
  EXPECT_EQ(b.base(), base);
  EXPECT_EQ(a.base(), nullptr);
  rt::FiberStack c(16 * 1024);
  c = std::move(b);
  EXPECT_EQ(c.base(), base);
}

TEST(FiberStack, StackIsWritable) {
  rt::FiberStack s(64 * 1024);
  auto* p = static_cast<char*>(s.base());
  p[0] = 'a';
  p[s.size() - 1] = 'z';
  EXPECT_EQ(p[0], 'a');
  EXPECT_EQ(p[s.size() - 1], 'z');
}

TEST(Fiber, RunsBodyToCompletion) {
  int x = 0;
  rt::Fiber f([&] { x = 42; }, 64 * 1024);
  EXPECT_EQ(f.state(), rt::Fiber::State::Created);
  f.resume();
  EXPECT_EQ(x, 42);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> order;
  rt::Fiber* self = nullptr;
  rt::Fiber f(
      [&] {
        order.push_back(1);
        self->yield_to_owner();
        order.push_back(3);
        self->yield_to_owner();
        order.push_back(5);
      },
      64 * 1024);
  self = &f;
  f.resume();
  order.push_back(2);
  EXPECT_EQ(f.state(), rt::Fiber::State::Suspended);
  f.resume();
  order.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksRunningFiber) {
  EXPECT_EQ(rt::Fiber::current(), nullptr);
  rt::Fiber* observed = reinterpret_cast<rt::Fiber*>(1);
  rt::Fiber f([&] { observed = rt::Fiber::current(); }, 64 * 1024);
  f.resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(rt::Fiber::current(), nullptr);
}

TEST(Fiber, ExceptionPropagatesToOwner) {
  rt::Fiber f([] { throw std::runtime_error("boom"); }, 64 * 1024);
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ResumeAfterFinishThrows) {
  rt::Fiber f([] {}, 64 * 1024);
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(Fiber, EmptyBodyRejected) {
  EXPECT_THROW(rt::Fiber(std::function<void()>{}, 64 * 1024), std::invalid_argument);
}

TEST(Fiber, ManyFibersInterleave) {
  constexpr int kFibers = 32;
  std::vector<std::unique_ptr<rt::Fiber>> fibers;
  std::vector<int> counters(kFibers, 0);
  std::vector<rt::Fiber*> handles(kFibers, nullptr);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<rt::Fiber>(
        [&, i] {
          for (int k = 0; k < 3; ++k) {
            counters[static_cast<std::size_t>(i)] += 1;
            handles[static_cast<std::size_t>(i)]->yield_to_owner();
          }
        },
        64 * 1024));
    handles[static_cast<std::size_t>(i)] = fibers.back().get();
  }
  for (int round = 0; round < 4; ++round) {
    for (auto& f : fibers) {
      if (!f->finished()) f->resume();
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    EXPECT_EQ(counters[static_cast<std::size_t>(i)], 3) << "fiber " << i;
    EXPECT_TRUE(fibers[static_cast<std::size_t>(i)]->finished());
  }
}

TEST(Fiber, DeepStackUsageWorks) {
  // Recursion that touches a few hundred KB of stack must not fault with a
  // 1 MiB stack.
  std::function<int(int)> rec = [&](int d) -> int {
    char pad[1024];
    pad[0] = static_cast<char>(1 + (d & 0x3f));  // always non-zero
    if (d == 0) return 0;
    return rec(d - 1) + (pad[0] ? 1 : 0);
  };
  int result = -1;
  rt::Fiber f([&] { result = rec(300); }, 1 << 20);
  f.resume();
  EXPECT_EQ(result, 300);
}
