// Tests for the multiblock parallel-sections application (Figure 1).
#include <gtest/gtest.h>

#include "apps/multiblock.hpp"

namespace ap = fxpar::apps;
using fxpar::MachineConfig;

namespace {
MachineConfig paragon(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 256 * 1024;
  return c;
}
}  // namespace

TEST(Multiblock, DataParallelMatchesReference) {
  ap::MultiblockConfig cfg;
  cfg.rows = 20;
  cfg.cols = 12;
  cfg.iterations = 5;
  const double ref = ap::multiblock_reference(cfg);
  for (int p : {1, 2, 4}) {
    const auto res = ap::run_multiblock(paragon(p), cfg, /*task_parallel=*/false);
    EXPECT_DOUBLE_EQ(res.checksum, ref) << "p=" << p;
  }
}

TEST(Multiblock, TaskParallelMatchesReference) {
  ap::MultiblockConfig cfg;
  cfg.rows = 20;
  cfg.cols = 12;
  cfg.iterations = 5;
  const double ref = ap::multiblock_reference(cfg);
  for (int p : {2, 3, 4, 8}) {
    const auto res = ap::run_multiblock(paragon(p), cfg, /*task_parallel=*/true);
    EXPECT_DOUBLE_EQ(res.checksum, ref) << "p=" << p;
  }
}

TEST(Multiblock, MoreProcsThanRowsStillCorrect) {
  ap::MultiblockConfig cfg;
  cfg.rows = 4;
  cfg.cols = 6;
  cfg.iterations = 3;
  const double ref = ap::multiblock_reference(cfg);
  const auto res = ap::run_multiblock(paragon(12), cfg, true);
  EXPECT_DOUBLE_EQ(res.checksum, ref);
}

TEST(Multiblock, ParallelSectionsOverlapTheTwoBlocks) {
  // Task parallel: proca and procb run concurrently on half the processors
  // each; in this compute-dominated regime that beats running both on all
  // processors back to back only when per-processor overheads matter, but
  // it must always beat the *same* subgroup sizes run serially. Check the
  // direct property: task parallel completes in less time than data
  // parallel when the meshes are small (overhead-bound).
  ap::MultiblockConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.iterations = 10;
  const auto dp = ap::run_multiblock(paragon(16), cfg, false);
  const auto tp = ap::run_multiblock(paragon(16), cfg, true);
  EXPECT_LT(tp.makespan, dp.makespan);
}

TEST(Multiblock, DeterministicTiming) {
  ap::MultiblockConfig cfg;
  const auto a = ap::run_multiblock(paragon(6), cfg, true);
  const auto b = ap::run_multiblock(paragon(6), cfg, true);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}
