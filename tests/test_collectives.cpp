// Tests for group collectives: broadcast, reduce, allreduce, gather,
// scatter, alltoall — over whole machines and over subgroups.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "comm/collectives.hpp"
#include "machine/context.hpp"

namespace mx = fxpar::machine;
namespace pg = fxpar::pgroup;
namespace cm = fxpar::comm;

namespace {

mx::MachineConfig fast_config(int p) {
  auto c = mx::MachineConfig::ideal(p);
  c.stack_bytes = 128 * 1024;
  return c;
}

}  // namespace

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BroadcastReachesEveryMember) {
  const int p = GetParam();
  mx::Machine m(fast_config(p));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(p);
    const int v = cm::broadcast(ctx, g, 0, ctx.phys_rank() == 0 ? 424242 : -1);
    EXPECT_EQ(v, 424242);
  });
}

TEST_P(CollectiveSizes, BroadcastFromNonzeroRoot) {
  const int p = GetParam();
  mx::Machine m(fast_config(p));
  const int root = p - 1;
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(p);
    const double v =
        cm::broadcast(ctx, g, root, ctx.phys_rank() == root ? 2.75 : 0.0);
    EXPECT_DOUBLE_EQ(v, 2.75);
  });
}

TEST_P(CollectiveSizes, ReduceSumsAllRanks) {
  const int p = GetParam();
  mx::Machine m(fast_config(p));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(p);
    const long v = cm::reduce(ctx, g, 0, static_cast<long>(ctx.phys_rank() + 1),
                              std::plus<long>{});
    if (ctx.phys_rank() == 0) {
      EXPECT_EQ(v, static_cast<long>(p) * (p + 1) / 2);
    } else {
      EXPECT_EQ(v, 0L);
    }
  });
}

TEST_P(CollectiveSizes, AllreduceMax) {
  const int p = GetParam();
  mx::Machine m(fast_config(p));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(p);
    const int v = cm::allreduce(ctx, g, (ctx.phys_rank() * 13) % p,
                                [](int a, int b) { return std::max(a, b); });
    int expect = 0;
    for (int r = 0; r < p; ++r) expect = std::max(expect, (r * 13) % p);
    EXPECT_EQ(v, expect);
  });
}

TEST_P(CollectiveSizes, GatherOrdersByVirtualRank) {
  const int p = GetParam();
  mx::Machine m(fast_config(p));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(p);
    const auto out = cm::gather(ctx, g, 0, ctx.phys_rank() * 10);
    if (ctx.phys_rank() == 0) {
      ASSERT_EQ(static_cast<int>(out.size()), p);
      for (int r = 0; r < p; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], r * 10);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes, ::testing::Values(1, 2, 3, 4, 7, 8, 16, 33));

TEST(Collectives, BroadcastVectorVariableLength) {
  mx::Machine m(fast_config(4));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    std::vector<double> data;
    if (ctx.phys_rank() == 0) data = {1.0, 2.5, -3.0};
    const auto out = cm::broadcast_vector(ctx, g, 0, data);
    EXPECT_EQ(out, (std::vector<double>{1.0, 2.5, -3.0}));
  });
}

TEST(Collectives, GatherVectorsConcatenates) {
  mx::Machine m(fast_config(3));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(3);
    // Rank r contributes r copies of r (rank 0 contributes nothing).
    std::vector<int> mine(static_cast<std::size_t>(ctx.phys_rank()), ctx.phys_rank());
    const auto out = cm::gather_vectors(ctx, g, 0, mine);
    if (ctx.phys_rank() == 0) {
      EXPECT_EQ(out, (std::vector<int>{1, 2, 2}));
    }
  });
}

TEST(Collectives, ScatterVectorsDistributesParts) {
  mx::Machine m(fast_config(3));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(3);
    std::vector<std::vector<int>> parts;
    if (ctx.phys_rank() == 1) {
      parts = {{10}, {20, 21}, {30, 31, 32}};
    }
    const auto mine = cm::scatter_vectors(ctx, g, 1, parts);
    switch (ctx.phys_rank()) {
      case 0: EXPECT_EQ(mine, (std::vector<int>{10})); break;
      case 1: EXPECT_EQ(mine, (std::vector<int>{20, 21})); break;
      case 2: EXPECT_EQ(mine, (std::vector<int>{30, 31, 32})); break;
      default: FAIL();
    }
  });
}

TEST(Collectives, AlltoallExchangesAllPairs) {
  constexpr int kP = 4;
  mx::Machine m(fast_config(kP));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(kP);
    const int me = ctx.phys_rank();
    std::vector<std::vector<int>> send(static_cast<std::size_t>(kP));
    for (int d = 0; d < kP; ++d) {
      send[static_cast<std::size_t>(d)] = {me * 100 + d};
    }
    const auto got = cm::alltoall_vectors(ctx, g, send);
    ASSERT_EQ(static_cast<int>(got.size()), kP);
    for (int s = 0; s < kP; ++s) {
      EXPECT_EQ(got[static_cast<std::size_t>(s)], (std::vector<int>{s * 100 + me}));
    }
  });
}

TEST(Collectives, SubgroupCollectiveLeavesOthersUntouched) {
  mx::Machine m(fast_config(6));
  const pg::ProcessorGroup sub({1, 3, 5});
  m.run([&](mx::Context& ctx) {
    if (!sub.contains(ctx.phys_rank())) {
      // Non-members do not participate and are not delayed.
      EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
      return;
    }
    const int root_val = (ctx.phys_rank() == 1) ? 55 : 0;
    EXPECT_EQ(cm::broadcast(ctx, sub, 0, root_val), 55);
    const int sum = cm::allreduce(ctx, sub, 1, std::plus<int>{});
    EXPECT_EQ(sum, 3);
  });
}

TEST(Collectives, TwoDisjointSubgroupsRunConcurrently) {
  mx::Machine m(fast_config(4));
  const pg::ProcessorGroup a({0, 1});
  const pg::ProcessorGroup b({2, 3});
  m.run([&](mx::Context& ctx) {
    const auto& mine = (ctx.phys_rank() < 2) ? a : b;
    const int base = (ctx.phys_rank() < 2) ? 100 : 200;
    const int root_val = (mine.virtual_of(ctx.phys_rank()) == 0) ? base : -1;
    EXPECT_EQ(cm::broadcast(ctx, mine, 0, root_val), base);
  });
}

TEST(Collectives, NonMemberCallRejected) {
  mx::Machine m(fast_config(2));
  const pg::ProcessorGroup sub({0});
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 1) cm::broadcast(ctx, sub, 0, 1);
  }),
               std::logic_error);
}

TEST(Collectives, BadRootRejected) {
  mx::Machine m(fast_config(2));
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    cm::broadcast(ctx, pg::ProcessorGroup::identity(2), 5, 1);
  }),
               std::out_of_range);
}

TEST(Collectives, ReduceIsDeterministicForFloats) {
  // Same schedule -> bit-identical floating point reduction results.
  auto run_once = [] {
    mx::Machine m(fast_config(8));
    double result = 0.0;
    m.run([&](mx::Context& ctx) {
      const auto g = pg::ProcessorGroup::identity(8);
      const double mine = 0.1 * static_cast<double>(ctx.phys_rank() + 1);
      const double s = cm::allreduce(ctx, g, mine, std::plus<double>{});
      if (ctx.phys_rank() == 0) result = s;
    });
    return result;
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);  // exact bit equality
}
