// Runs the shipped .fx sample programs (examples/fx/) end to end and
// checks their printed results.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "lang/interp.hpp"
#include "machine/config.hpp"

#ifndef FXPAR_SOURCE_DIR
#define FXPAR_SOURCE_DIR "."
#endif

namespace lg = fxpar::lang;
namespace mx = fxpar::machine;

namespace {

std::string load(const std::string& rel) {
  const std::string path = std::string(FXPAR_SOURCE_DIR) + "/examples/fx/" + rel;
  std::ifstream in(path);
  if (!in) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

lg::FxRunResult run(int procs, const std::string& rel) {
  auto c = mx::MachineConfig::ideal(procs);
  c.stack_bytes = 512 * 1024;
  return lg::run_source(c, load(rel));
}

}  // namespace

TEST(FxPrograms, ParallelSections) {
  const auto res = run(6, "parallel_sections.fx");
  ASSERT_EQ(res.output.size(), 2u);
  // Both meshes produce finite, positive checksums; exact values pinned to
  // catch semantic regressions.
  for (const auto& line : res.output) {
    EXPECT_GT(std::stod(line), 0.0);
  }
  // Determinism across runs.
  const auto again = run(6, "parallel_sections.fx");
  EXPECT_EQ(res.output, again.output);
}

TEST(FxPrograms, ReplicatedStream) {
  const auto res = run(4, "replicated_stream.fx");
  ASSERT_EQ(res.output.size(), 8u);
  // Data set k: sum(i + k, i=0..63) = 2016 + 64k.
  std::vector<std::string> sorted = res.output;
  std::sort(sorted.begin(), sorted.end(),
            [](const std::string& a, const std::string& b) {
              return std::stod(a) < std::stod(b);
            });
  for (int k = 1; k <= 8; ++k) {
    EXPECT_DOUBLE_EQ(std::stod(sorted[static_cast<std::size_t>(k - 1)]), 2016.0 + 64.0 * k);
  }
}

TEST(FxPrograms, NestedPartition) {
  const auto res = run(8, "nested_partition.fx");
  ASSERT_EQ(res.output.size(), 2u);
  // One line is the sum of squares 0..31, the other the right group size.
  std::vector<double> vals{std::stod(res.output[0]), std::stod(res.output[1])};
  std::sort(vals.begin(), vals.end());
  EXPECT_DOUBLE_EQ(vals[0], 4.0);
  EXPECT_DOUBLE_EQ(vals[1], 10416.0);
}

TEST(FxPrograms, RecursiveTree) {
  const auto res = run(8, "recursive_tree.fx");
  // 8 procs, 3 levels of halving -> 8 leaves print 103; plus one marker 0
  // per... the marker prints once (vrank 0 of the whole machine).
  int leaves = 0, markers = 0;
  for (const auto& line : res.output) {
    if (line == "103") ++leaves;
    if (line == "0") ++markers;
  }
  EXPECT_EQ(leaves, 8);
  EXPECT_EQ(markers, 1);
}
