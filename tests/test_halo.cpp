// Direct tests of the ghost-row halo exchange used by the stencil stages
// (stereo window sums, airshed transport, multiblock relaxation).
#include <gtest/gtest.h>

#include "dist/halo.hpp"
#include "machine/context.hpp"

namespace ds = fxpar::dist;
namespace mx = fxpar::machine;
namespace pg = fxpar::pgroup;

namespace {

mx::MachineConfig cfg(int p) {
  auto c = mx::MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

ds::Layout rows_layout(const pg::ProcessorGroup& g, std::int64_t planes, std::int64_t h,
                       std::int64_t w) {
  return ds::Layout(g, {planes, h, w},
                    {ds::DimDist::collapsed(), ds::DimDist::block(), ds::DimDist::collapsed()});
}

double cell(std::int64_t d, std::int64_t r, std::int64_t j) {
  return static_cast<double>(d * 10000 + r * 100 + j);
}

/// Runs the exchange on `p` procs with the given shape/halo and checks
/// every ghost value against the generating function.
void check_halo(int p, std::int64_t planes, std::int64_t h, std::int64_t w, int halo) {
  mx::Machine m(cfg(p));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(p);
    ds::DistArray<double> a(ctx, rows_layout(g, planes, h, w), "a");
    a.fill([](std::span<const std::int64_t> gi) { return cell(gi[0], gi[1], gi[2]); });
    const auto ghosts = ds::exchange_row_halo(ctx, a, halo);
    if (!a.is_member() || a.local().empty()) return;

    const auto runs = a.layout().owned_runs(a.my_vrank(), 1);
    const std::int64_t lo = runs.front().start;
    const std::int64_t hi = lo + runs.front().len;
    EXPECT_EQ(ghosts.n_above, lo - std::max<std::int64_t>(0, lo - halo));
    EXPECT_EQ(ghosts.n_below, std::min(h, hi + halo) - hi);
    for (std::int64_t d = 0; d < planes; ++d) {
      for (std::int64_t r = 0; r < ghosts.n_above; ++r) {
        for (std::int64_t j = 0; j < w; ++j) {
          EXPECT_DOUBLE_EQ(
              ghosts.above[static_cast<std::size_t>((d * ghosts.n_above + r) * w + j)],
              cell(d, ghosts.first_above + r, j))
              << "p=" << p << " above d=" << d << " r=" << r;
        }
      }
      for (std::int64_t r = 0; r < ghosts.n_below; ++r) {
        for (std::int64_t j = 0; j < w; ++j) {
          EXPECT_DOUBLE_EQ(
              ghosts.below[static_cast<std::size_t>((d * ghosts.n_below + r) * w + j)],
              cell(d, ghosts.first_below + r, j))
              << "p=" << p << " below d=" << d << " r=" << r;
        }
      }
    }
  });
}

}  // namespace

TEST(Halo, SingleProcessorHasNoGhosts) { check_halo(1, 2, 8, 3, 2); }

TEST(Halo, TwoProcessorsExchangeBoundary) { check_halo(2, 2, 8, 3, 2); }

class HaloSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HaloSweep, GhostValuesCorrect) {
  const int p = std::get<0>(GetParam());
  const int halo = std::get<1>(GetParam());
  check_halo(p, 3, 17, 4, halo);
}

// 17 rows over up to 24 procs: includes blocks narrower than the halo and
// processors owning no rows at all.
INSTANTIATE_TEST_SUITE_P(ProcsByHalo, HaloSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 17, 24),
                                            ::testing::Values(1, 2, 3)));

class HaloParity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HaloParity, CachedMatchesUncachedBitExactly) {
  // The cached exchange must issue the same messages and charges and return
  // the same ghosts as the analysis-per-call path.
  const int p = std::get<0>(GetParam());
  const int halo = std::get<1>(GetParam());
  auto one = [&](bool cache_on) {
    auto c = cfg(p);
    c.plan_cache = cache_on;
    std::vector<double> sums(static_cast<std::size_t>(p), 0.0);
    mx::Machine m(c);
    const auto res = m.run([&](mx::Context& ctx) {
      ds::DistArray<double> a(ctx, rows_layout(pg::ProcessorGroup::identity(p), 3, 17, 4), "a");
      a.fill([](std::span<const std::int64_t> gi) { return cell(gi[0], gi[1], gi[2]); });
      const auto ghosts = ds::exchange_row_halo(ctx, a, halo);
      double s = 0.0;
      for (std::size_t i = 0; i < ghosts.above.size(); ++i) {
        s += ghosts.above[i] * static_cast<double>(i + 1);
      }
      for (std::size_t i = 0; i < ghosts.below.size(); ++i) {
        s -= ghosts.below[i] * static_cast<double>(i + 1);
      }
      sums[static_cast<std::size_t>(ctx.phys_rank())] = s;
    });
    return std::make_tuple(res.finish_time, res.messages, res.bytes, sums,
                           res.plan_cache_hits + res.plan_cache_misses);
  };
  const auto cached = one(true);
  const auto plain = one(false);
  EXPECT_EQ(std::get<0>(cached), std::get<0>(plain));  // exact finish time
  EXPECT_EQ(std::get<1>(cached), std::get<1>(plain));
  EXPECT_EQ(std::get<2>(cached), std::get<2>(plain));
  EXPECT_EQ(std::get<3>(cached), std::get<3>(plain));
  EXPECT_GT(std::get<4>(cached), 0u);
  EXPECT_EQ(std::get<4>(plain), 0u);
}

INSTANTIATE_TEST_SUITE_P(ProcsByHalo, HaloParity,
                         ::testing::Combine(::testing::Values(2, 5, 8, 24),
                                            ::testing::Values(1, 3)));

TEST(Halo, WrongLayoutRejected) {
  mx::Machine m(cfg(2));
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(2);
    ds::DistArray<double> a(
        ctx, ds::Layout(g, {2, 8, 3},
                        {ds::DimDist::block(), ds::DimDist::collapsed(),
                         ds::DimDist::collapsed()}),
        "a");
    ds::exchange_row_halo(ctx, a, 1);
  }),
               std::invalid_argument);
}

TEST(Halo, NoMessagesOnSingleProc) {
  mx::Machine m(cfg(1));
  auto res = m.run([&](mx::Context& ctx) {
    ds::DistArray<double> a(ctx, rows_layout(pg::ProcessorGroup::identity(1), 1, 4, 2), "a");
    a.fill_value(1.0);
    ds::exchange_row_halo(ctx, a, 2);
  });
  EXPECT_EQ(res.messages, 0u);
}

TEST(Halo, MessageCountMatchesNeighbourStructure) {
  // 8 rows over 4 procs, halo 1: interior procs exchange with 2 neighbours,
  // edge procs with 1: total messages = 2*(p-1) = 6.
  mx::Machine m(cfg(4));
  auto res = m.run([&](mx::Context& ctx) {
    ds::DistArray<double> a(ctx, rows_layout(pg::ProcessorGroup::identity(4), 1, 8, 2), "a");
    a.fill_value(0.0);
    ds::exchange_row_halo(ctx, a, 1);
  });
  EXPECT_EQ(res.messages, 6u);
}
