// Tests for the MPI-communicator veneer: world/split semantics, point to
// point, and collectives expressed in MPI vocabulary.
#include <gtest/gtest.h>

#include <functional>

#include "comm/mpi_like.hpp"
#include "machine/context.hpp"

namespace mx = fxpar::machine;
namespace mpi = fxpar::fxmpi;

namespace {
mx::MachineConfig cfg(int p) {
  auto c = mx::MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}
}  // namespace

TEST(FxMpi, WorldRankAndSize) {
  mx::Machine m(cfg(5));
  m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    EXPECT_EQ(world.size(), 5);
    EXPECT_EQ(world.rank(), ctx.phys_rank());
  });
}

TEST(FxMpi, SendRecvByCommRank) {
  mx::Machine m(cfg(2));
  m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    if (world.rank() == 0) {
      world.send(1, 42, 3.75);
    } else {
      EXPECT_DOUBLE_EQ(world.recv<double>(0, 42), 3.75);
    }
  });
}

TEST(FxMpi, SplitByParity) {
  mx::Machine m(cfg(6));
  m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    const int color = world.rank() % 2;
    mpi::Comm sub = world.split(color, world.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    // Collectives stay inside the split communicator.
    const int sum = sub.allreduce(world.rank(), std::plus<int>{});
    EXPECT_EQ(sum, color == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(FxMpi, SplitKeyReordersRanks) {
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    // Reverse the rank order via descending keys.
    mpi::Comm rev = world.split(0, world.size() - world.rank());
    EXPECT_EQ(rev.rank(), world.size() - 1 - world.rank());
  });
}

TEST(FxMpi, BcastReduceGather) {
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    const int v = world.bcast(2, world.rank() == 2 ? 77 : -1);
    EXPECT_EQ(v, 77);
    const long total = world.reduce(0, static_cast<long>(world.rank()), std::plus<long>{});
    if (world.rank() == 0) {
      EXPECT_EQ(total, 6);
    }
    const auto all = world.allgather(world.rank() * 10);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
  });
}

TEST(FxMpi, VectorMessages) {
  mx::Machine m(cfg(2));
  m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    if (world.rank() == 0) {
      world.send_vector(1, 9, std::vector<float>{1.5f, -2.0f});
    } else {
      EXPECT_EQ(world.recv_vector<float>(0, 9), (std::vector<float>{1.5f, -2.0f}));
    }
  });
}

TEST(FxMpi, AlltoallMatchesCollective) {
  mx::Machine m(cfg(3));
  m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    std::vector<std::vector<int>> send(3);
    for (int d = 0; d < 3; ++d) send[static_cast<std::size_t>(d)] = {world.rank() * 10 + d};
    const auto got = world.alltoall(send);
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(got[static_cast<std::size_t>(s)], (std::vector<int>{s * 10 + world.rank()}));
    }
  });
}

TEST(FxMpi, NegativeColorIsUndefined) {
  mx::Machine m(cfg(2));
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    world.split(-1, 0);
  }),
               std::logic_error);
}

TEST(FxMpi, NegativeTagRejected) {
  mx::Machine m(cfg(2));
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    if (world.rank() == 0) world.send(1, -1, 0);
    if (world.rank() == 1) world.recv<int>(0, -1);
  }),
               std::invalid_argument);
}

TEST(FxMpi, TwoLevelSplitMirrorsNestedPartitions) {
  // comm_split of a comm_split == the paper's dynamically nested task
  // regions, expressed in MPI vocabulary.
  mx::Machine m(cfg(8));
  m.run([&](mx::Context& ctx) {
    mpi::Comm world(ctx);
    mpi::Comm half = world.split(world.rank() / 4, world.rank());
    mpi::Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    const int local_sum = quarter.allreduce(world.rank(), std::plus<int>{});
    // Each quarter holds consecutive world ranks {2k, 2k+1}.
    EXPECT_EQ(local_sum, (world.rank() / 2) * 4 + 1);
  });
}
