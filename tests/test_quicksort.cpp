// Tests for the nested task parallel quicksort (Figure 4).
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/quicksort.hpp"

namespace ap = fxpar::apps;
using fxpar::MachineConfig;

namespace {

MachineConfig paragon(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 512 * 1024;  // recursive task regions need headroom
  return c;
}

void expect_sorted_matches(const std::vector<std::int64_t>& input, int procs) {
  auto expect = input;
  std::sort(expect.begin(), expect.end());
  const auto res = ap::run_parallel_qsort(paragon(procs), input);
  EXPECT_EQ(res.sorted, expect) << "p=" << procs << " n=" << input.size();
}

}  // namespace

TEST(Quicksort, SingleProcessorSorts) {
  expect_sorted_matches(ap::qsort_input(100, 1), 1);
}

class QsortSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QsortSweep, SortsRandomInput) {
  const int procs = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  expect_sorted_matches(ap::qsort_input(n, static_cast<unsigned>(n + procs)), procs);
}

INSTANTIATE_TEST_SUITE_P(ProcsBySizes, QsortSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                                            ::testing::Values(1, 2, 17, 100, 513)));

TEST(Quicksort, AlreadySortedInput) {
  std::vector<std::int64_t> v(200);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<std::int64_t>(i);
  expect_sorted_matches(v, 4);
}

TEST(Quicksort, ReverseSortedInput) {
  std::vector<std::int64_t> v(200);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<std::int64_t>(200 - i);
  expect_sorted_matches(v, 4);
}

TEST(Quicksort, AllEqualKeys) {
  std::vector<std::int64_t> v(128, 42);
  expect_sorted_matches(v, 4);
}

TEST(Quicksort, FewDistinctKeys) {
  std::vector<std::int64_t> v;
  for (int i = 0; i < 300; ++i) v.push_back(i % 3);
  expect_sorted_matches(v, 8);
}

TEST(Quicksort, FewerElementsThanProcessors) {
  expect_sorted_matches(ap::qsort_input(5, 7), 8);
}

TEST(Quicksort, NegativeAndDuplicateValues) {
  std::vector<std::int64_t> v{5, -3, 0, -3, 12, 5, 5, -100, 7, 0};
  expect_sorted_matches(v, 4);
}

TEST(Quicksort, ProcessorsSubdivideProportionally) {
  // Smoke check that parallel runs use communication (the redistribution
  // and merge phases) and stay deterministic.
  const auto input = ap::qsort_input(400, 9);
  const auto a = ap::run_parallel_qsort(paragon(8), input);
  const auto b = ap::run_parallel_qsort(paragon(8), input);
  EXPECT_GT(a.machine_result.messages, 0u);
  EXPECT_EQ(a.sorted, b.sorted);
  EXPECT_EQ(a.machine_result.messages, b.machine_result.messages);
  EXPECT_DOUBLE_EQ(a.machine_result.finish_time, b.machine_result.finish_time);
}

TEST(Quicksort, ParallelIsFasterThanSingleProcessorInModel) {
  // Communication overheads dominate at small n (a real machine property);
  // at 1M keys the parallel version wins clearly.
  const auto input = ap::qsort_input(1 << 20, 3);
  const auto p1 = ap::run_parallel_qsort(paragon(1), input);
  const auto p8 = ap::run_parallel_qsort(paragon(8), input);
  EXPECT_LT(p8.machine_result.finish_time, p1.machine_result.finish_time);
}

TEST(Quicksort, SmallProblemsAreCommunicationBound) {
  // The flip side: on tiny inputs the single processor wins, because the
  // redistribution latency cannot be amortized. This is the same effect
  // Table 1 shows for small data sets.
  const auto input = ap::qsort_input(256, 5);
  const auto p1 = ap::run_parallel_qsort(paragon(1), input);
  const auto p8 = ap::run_parallel_qsort(paragon(8), input);
  EXPECT_LT(p1.machine_result.finish_time, p8.machine_result.finish_time);
}
