// Tests for the structured event tracer: span nesting, disabled-tracing
// no-ops, machine-driven event capture, chrome trace export (validated with
// a mini JSON parser), the phase report, and the critical-path analyzer on
// a hand-built two-processor send/receive log.
#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <string>

#include "core/fx.hpp"
#include "json_checker.hpp"
#include "trace/chrome_export.hpp"
#include "trace/critical_path.hpp"
#include "trace/phase_report.hpp"
#include "trace/trace.hpp"

namespace mx = fxpar::machine;
namespace tr = fxpar::trace;

namespace {

mx::MachineConfig test_config(int p) {
  mx::MachineConfig c;
  c.num_procs = p;
  c.send_overhead = 1.0;
  c.recv_overhead = 2.0;
  c.latency = 10.0;
  c.byte_time = 0.5;
  c.barrier_base = 1.0;
  c.barrier_stage = 1.0;
  c.io_latency = 100.0;
  c.io_byte_time = 1.0;
  c.stack_bytes = 128 * 1024;
  c.trace = true;
  return c;
}

}  // namespace

TEST(Trace, SpanNestingAndTiming) {
  tr::TraceRecorder rec(1);
  double t = 0.0;
  rec.set_clock([&](int) { return t; });

  rec.begin_span(0, "outer", "test");
  EXPECT_EQ(rec.open_depth(0), 1);
  t = 1.0;
  rec.begin_span(0, "inner", "test");
  EXPECT_EQ(rec.open_depth(0), 2);
  rec.add_busy(0, 2.0);
  t = 3.0;
  rec.end_span(0);
  EXPECT_EQ(rec.open_depth(0), 1);
  t = 4.0;
  rec.end_span(0);
  EXPECT_EQ(rec.open_depth(0), 0);
  rec.finalize(4.0);

  ASSERT_EQ(rec.spans().size(), 2u);
  // Sorted by (proc, t0, depth): outer first.
  const tr::Span& outer = rec.spans()[0];
  const tr::Span& inner = rec.spans()[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_DOUBLE_EQ(outer.t0, 0.0);
  EXPECT_DOUBLE_EQ(outer.t1, 4.0);
  EXPECT_DOUBLE_EQ(outer.busy, 2.0);  // inclusive: inner busy counts here too
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_DOUBLE_EQ(inner.t0, 1.0);
  EXPECT_DOUBLE_EQ(inner.t1, 3.0);
  EXPECT_DOUBLE_EQ(inner.busy, 2.0);
}

TEST(Trace, FinalizeClosesOpenSpans) {
  tr::TraceRecorder rec(2);
  double t = 0.0;
  rec.set_clock([&](int) { return t; });
  rec.begin_span(0, "left-open", "test");
  t = 5.0;
  rec.finalize(7.5);
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.spans()[0].t1, 7.5);
  EXPECT_DOUBLE_EQ(rec.finish_time(), 7.5);
  EXPECT_EQ(rec.open_depth(0), 0);
}

TEST(Trace, ScopedSpanIsInertWhenDefaultConstructed) {
  tr::ScopedSpan inert;  // no recorder attached: all operations are no-ops
  inert.close();

  tr::TraceRecorder rec(1);
  rec.set_clock([](int) { return 0.0; });
  {
    tr::ScopedSpan sp(&rec, 0);
    rec.begin_span(0, "scoped", "test");
    tr::ScopedSpan moved = std::move(sp);
    moved.close();
    moved.close();  // idempotent
    EXPECT_EQ(rec.open_depth(0), 0);
  }
}

TEST(Trace, DisabledTracingIsNoOp) {
  mx::MachineConfig cfg = test_config(2);
  cfg.trace = false;
  mx::Machine m(cfg);
  EXPECT_EQ(m.tracer(), nullptr);
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    // ctx.span must be inert, not crash, when tracing is off.
    auto sp = ctx.span("unused", "test");
    ctx.charge(1.0);
    ctx.barrier(ctx.group());
  });
  EXPECT_EQ(res.trace, nullptr);

  // Tracing never changes modeled time: same program, traced, same clock.
  mx::Machine traced(test_config(2));
  const mx::RunResult res2 = traced.run([](mx::Context& ctx) {
    auto sp = ctx.span("unused", "test");
    ctx.charge(1.0);
    ctx.barrier(ctx.group());
  });
  ASSERT_NE(res2.trace, nullptr);
  EXPECT_DOUBLE_EQ(res2.finish_time, res.finish_time);
}

TEST(Trace, MachineRunRecordsMessageEdges) {
  mx::Machine m(test_config(2));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 7, mx::Payload(4));  // busy [0,3], arrival 13
    } else {
      (void)ctx.recv_phys(0, 7);
    }
  });
  ASSERT_NE(res.trace, nullptr);
  const tr::TraceRecorder& rec = *res.trace;

  ASSERT_EQ(rec.messages().size(), 1u);
  const tr::MessageRecord& msg = rec.messages()[0];
  EXPECT_EQ(msg.src, 0);
  EXPECT_EQ(msg.dst, 1);
  EXPECT_EQ(msg.bytes, 4u);
  EXPECT_DOUBLE_EQ(msg.send_t0, 0.0);
  EXPECT_DOUBLE_EQ(msg.send_t1, 3.0);
  EXPECT_DOUBLE_EQ(msg.recv_t, 13.0);

  // The receiver's stall is one recv wait [0, 13] caused by the send end.
  ASSERT_EQ(rec.waits().size(), 1u);
  const tr::Wait& w = rec.waits()[0];
  EXPECT_EQ(w.kind, tr::WaitKind::Recv);
  EXPECT_EQ(w.proc, 1);
  EXPECT_DOUBLE_EQ(w.t0, 0.0);
  EXPECT_DOUBLE_EQ(w.t1, 13.0);
  EXPECT_EQ(w.cause_proc, 0);
  EXPECT_DOUBLE_EQ(w.cause_time, 3.0);

  EXPECT_DOUBLE_EQ(rec.proc_totals()[1].recv_wait, 13.0);
}

TEST(Trace, BarrierRecordsModeledLastArriver) {
  mx::Machine m(test_config(3));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    ctx.charge(ctx.phys_rank() == 1 ? 9.0 : 1.0);  // proc 1 arrives last
    ctx.barrier(ctx.group());
  });
  const tr::TraceRecorder& rec = *res.trace;
  ASSERT_EQ(rec.barriers().size(), 1u);
  const tr::BarrierRecord& b = rec.barriers()[0];
  EXPECT_EQ(b.last_arriver, 1);
  EXPECT_DOUBLE_EQ(b.release, 9.0 + 1.0 + 1.0 * 2.0);  // base + stage*ceil(log2 3)

  // Early arrivers wait [1, release] with the happens-before edge at the
  // last arrival; the last arriver waits only for the barrier cost itself.
  for (const tr::Wait& w : rec.waits()) {
    EXPECT_EQ(w.kind, tr::WaitKind::Barrier);
    EXPECT_EQ(w.cause_proc, 1);
    EXPECT_DOUBLE_EQ(w.cause_time, 9.0);
    EXPECT_DOUBLE_EQ(w.t1, b.release);
    EXPECT_DOUBLE_EQ(w.t0, w.proc == 1 ? 9.0 : 1.0);
  }
}

TEST(Trace, ChromeExportIsValidJson) {
  mx::Machine m(test_config(2));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    auto sp = ctx.span("phase \"one\"\n", "test");  // needs escaping
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 3, mx::Payload(8));
    } else {
      (void)ctx.recv_phys(0, 3);
    }
    ctx.barrier(ctx.group());
  });
  const std::string json = tr::chrome_trace_json(*res.trace);
  fxtest::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete events
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // flow end
  EXPECT_NE(json.find("phase \\\"one\\\"\\n"), std::string::npos);
}

TEST(Trace, PhaseReportAggregatesNamedSpans) {
  mx::Machine m(test_config(2));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    {
      auto sp = ctx.span("compute", "test");
      ctx.charge(2.0);
    }
    auto sp = ctx.span("sync", "test");
    ctx.barrier(ctx.group());
  });
  const tr::PhaseReport rep = tr::phase_report(*res.trace);
  EXPECT_EQ(rep.num_procs, 2);
  EXPECT_GT(rep.makespan, 0.0);
  // All activity happens inside the two named spans.
  EXPECT_NEAR(rep.attributed_fraction, 1.0, 1e-9);

  const tr::PhaseStats* compute = nullptr;
  const tr::PhaseStats* sync = nullptr;
  for (const tr::PhaseStats& p : rep.phases) {
    if (p.name == "compute") compute = &p;
    if (p.name == "sync") sync = &p;
  }
  ASSERT_NE(compute, nullptr);
  ASSERT_NE(sync, nullptr);
  EXPECT_EQ(compute->instances, 2);
  EXPECT_DOUBLE_EQ(compute->busy, 4.0);  // 2 procs x 2 s
  EXPECT_DOUBLE_EQ(compute->barrier_wait, 0.0);
  EXPECT_DOUBLE_EQ(sync->busy, 0.0);
  EXPECT_GT(sync->barrier_wait, 0.0);
  EXPECT_FALSE(rep.to_string().empty());
}

TEST(Trace, CriticalPathOnHandBuiltTwoProcLog) {
  // proc 0 computes [0, 1.0], sends over [1.0, 1.1]; the message is ready
  // at proc 1 at 1.2, which then computes [1.2, 2.2]. The critical path is
  // proc 0's execute + the wire delay + proc 1's execute.
  tr::TraceRecorder rec(2);
  double clock[2] = {0.0, 0.0};
  rec.set_clock([&](int p) { return clock[p]; });

  // Mirror a machine run: a depth-0 root span per proc, named work inside.
  rec.begin_span(0, "program", "root");
  rec.begin_span(1, "program", "root");
  rec.begin_span(0, "produce", "test");
  rec.begin_span(1, "consume", "test");
  rec.add_busy(0, 1.1);
  clock[0] = 1.1;
  const std::uint64_t id = rec.message_sent(0, 1, 42, 64, 1.0, 1.1);
  rec.message_received(id, 0.0, 1.2);
  clock[1] = 1.2;
  rec.add_busy(1, 1.0);
  clock[1] = 2.2;
  rec.end_span(0);
  rec.end_span(1);
  rec.finalize(2.2);

  const tr::CriticalPathReport cp = tr::critical_path(rec);
  EXPECT_DOUBLE_EQ(cp.makespan, 2.2);
  EXPECT_NEAR(cp.execute_time, 2.1, 1e-9);
  EXPECT_NEAR(cp.recv_delay, 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(cp.barrier_delay, 0.0);
  EXPECT_NEAR(cp.attributed_fraction, 1.0, 1e-9);

  ASSERT_GE(cp.steps.size(), 3u);
  // Steps come back in time order: produce, wire delay, consume.
  EXPECT_EQ(cp.steps.front().kind, tr::PathStep::Kind::Execute);
  EXPECT_EQ(cp.steps.front().proc, 0);
  EXPECT_EQ(cp.steps.front().span, "produce");
  EXPECT_EQ(cp.steps.back().kind, tr::PathStep::Kind::Execute);
  EXPECT_EQ(cp.steps.back().proc, 1);
  EXPECT_EQ(cp.steps.back().span, "consume");
  bool saw_delay = false;
  for (const tr::PathStep& st : cp.steps) {
    if (st.kind == tr::PathStep::Kind::Delay) {
      saw_delay = true;
      EXPECT_EQ(st.wait_kind, tr::WaitKind::Recv);
      EXPECT_NEAR(st.duration(), 0.1, 1e-9);
    }
  }
  EXPECT_TRUE(saw_delay);
  EXPECT_FALSE(cp.to_string().empty());
}

TEST(Trace, CriticalPathCrossesTaskRegions) {
  // Two subgroups; "slow" computes 4x longer, then a full barrier. The
  // critical path must run through on:slow, not on:fast.
  mx::MachineConfig cfg = test_config(4);
  mx::Machine m(cfg);
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    fxpar::core::TaskPartition part(ctx, {{"fast", 2}, {"slow", 2}}, "demo");
    fxpar::core::TaskRegion region(ctx, part);
    region.on("fast", [&] { ctx.charge(1.0); });
    region.on("slow", [&] { ctx.charge(4.0); });
    ctx.barrier(ctx.group());
  });
  const tr::CriticalPathReport cp = tr::critical_path(*res.trace);
  double slow_on_path = 0.0;
  double fast_on_path = 0.0;
  for (const tr::SpanCritical& sc : cp.by_span) {
    if (sc.name == "on:slow") slow_on_path = sc.critical();
    if (sc.name == "on:fast") fast_on_path = sc.critical();
  }
  EXPECT_NEAR(slow_on_path, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(fast_on_path, 0.0);
}

TEST(Trace, IoWaitsAreSerializedAndAttributed) {
  mx::Machine m(test_config(2));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    ctx.io(10);  // both procs at t=0: device serializes them
  });
  const tr::TraceRecorder& rec = *res.trace;
  ASSERT_EQ(rec.waits().size(), 2u);
  double total_io = 0.0;
  for (const tr::Wait& w : rec.waits()) {
    EXPECT_EQ(w.kind, tr::WaitKind::Io);
    total_io += w.t1 - w.t0;
  }
  // First op: 110 s; second queues behind it: 220 s.
  EXPECT_DOUBLE_EQ(total_io, 110.0 + 220.0);
}

// ---------------------------------------------------------------------------
// Steal / plan-cache span attribution and merged concurrent traces
// ---------------------------------------------------------------------------

TEST(Trace, StealAndPlanCacheEventsAttributeToOpenSpans) {
  tr::TraceRecorder rec(2);
  double t = 0.0;
  rec.set_clock([&](int) { return t; });

  rec.begin_span(0, "outer", "test");
  rec.begin_span(0, "loop", "test");
  rec.steal_event(0, 1, 32, 0.5);
  rec.steal_event(0, 1, 16, 0.7);
  rec.plan_cache_event(0, true);
  rec.plan_cache_event(0, true);
  rec.plan_cache_event(0, false);
  t = 1.0;
  rec.end_span(0);
  // Events after the inner span closed only reach the outer span.
  rec.steal_event(0, 1, 8, 1.5);
  t = 2.0;
  rec.end_span(0);
  rec.finalize(2.0);

  ASSERT_EQ(rec.steals().size(), 3u);
  EXPECT_EQ(rec.steals()[0].thief, 0);
  EXPECT_EQ(rec.steals()[0].victim, 1);
  EXPECT_EQ(rec.steals()[0].iters, 32u);

  const tr::Span* outer = nullptr;
  const tr::Span* loop = nullptr;
  for (const tr::Span& s : rec.spans()) {
    if (s.name == "outer") outer = &s;
    if (s.name == "loop") loop = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->steals, 2u);
  EXPECT_EQ(loop->stolen_iters, 48u);
  EXPECT_EQ(loop->plan_hits, 2u);
  EXPECT_EQ(loop->plan_misses, 1u);
  EXPECT_EQ(outer->steals, 3u);  // inclusive, like the time accounting
  EXPECT_EQ(outer->stolen_iters, 56u);
  EXPECT_EQ(outer->plan_hits, 2u);
  EXPECT_EQ(outer->plan_misses, 1u);
}

TEST(Trace, PhaseReportSurfacesStealAndPlanCacheCounters) {
  tr::TraceRecorder rec(1);
  double t = 0.0;
  rec.set_clock([&](int) { return t; });
  rec.begin_span(0, "program", "root");
  rec.begin_span(0, "loop", "test");
  rec.add_busy(0, 1.0);
  rec.steal_event(0, 0, 64, 0.5);
  rec.plan_cache_event(0, true);
  rec.plan_cache_event(0, false);
  t = 1.0;
  rec.end_span(0);
  rec.begin_span(0, "quiet", "test");
  rec.add_busy(0, 1.0);
  t = 2.0;
  rec.end_span(0);
  rec.end_span(0);
  rec.finalize(2.0);

  const tr::PhaseReport rep = tr::phase_report(rec);
  const tr::PhaseStats* loop = nullptr;
  const tr::PhaseStats* quiet = nullptr;
  for (const tr::PhaseStats& p : rep.phases) {
    if (p.name == "loop") loop = &p;
    if (p.name == "quiet") quiet = &p;
  }
  ASSERT_NE(loop, nullptr);
  ASSERT_NE(quiet, nullptr);
  EXPECT_EQ(loop->steals, 1u);
  EXPECT_EQ(loop->stolen_iters, 64u);
  EXPECT_EQ(loop->plan_hits, 1u);
  EXPECT_EQ(loop->plan_misses, 1u);
  EXPECT_EQ(quiet->steals, 0u);

  // The steal/plan table appears, lists the active phase only.
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("steals stolen_iters"), std::string::npos);
  const std::size_t table = text.find("steals stolen_iters");
  EXPECT_NE(text.find("loop", table), std::string::npos);
  EXPECT_EQ(text.find("quiet", table), std::string::npos);
}

TEST(Trace, MergedConcurrentTraceCriticalPathWithSteals) {
  // Hand-built two-worker trace, recorded through the concurrent-mode
  // shards exactly as the threaded backend does: rank 0 produces over
  // [0, 1.0] and deposits a message; rank 1 blocks on the receive until
  // 1.2, then consumes over [1.2, 2.2], completing one stolen chunk on the
  // way. After merge_concurrent() the analyzers must see one coherent run.
  tr::TraceRecorder rec(2);
  double c[2] = {0.0, 0.0};
  rec.set_clock([&](int p) { return c[p]; });
  rec.set_concurrent(2);

  rec.begin_span(0, "program", "root");
  rec.begin_span(0, "produce", "test");
  const std::uint64_t id = rec.message_sent(0, 1, 7, 64, 0.9, 1.0);
  c[0] = 1.0;
  rec.end_span(0);
  rec.end_span(0);

  rec.begin_span(1, "program", "root");
  rec.message_received_at(id, 1, 0, 1.0, 0.0, 1.2);
  c[1] = 1.2;
  rec.begin_span(1, "consume", "test");
  rec.steal_event(1, 0, 16, 1.7);
  c[1] = 2.2;
  rec.end_span(1);
  rec.end_span(1);

  rec.merge_concurrent();
  rec.finalize(2.2);

  // Merged streams: the sender-shard message carries the receiver's
  // consumption time; the thief-shard steal survives the merge.
  ASSERT_EQ(rec.messages().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.messages()[0].recv_t, 1.2);
  ASSERT_EQ(rec.steals().size(), 1u);
  EXPECT_EQ(rec.steals()[0].thief, 1);
  EXPECT_EQ(rec.steals()[0].victim, 0);

  const tr::Span* consume = nullptr;
  for (const tr::Span& s : rec.spans()) {
    if (s.name == "consume") consume = &s;
  }
  ASSERT_NE(consume, nullptr);
  EXPECT_EQ(consume->steals, 1u);
  EXPECT_EQ(consume->stolen_iters, 16u);
  EXPECT_DOUBLE_EQ(consume->busy, 1.0);  // elapsed minus waits

  const tr::CriticalPathReport cp = tr::critical_path(rec);
  EXPECT_DOUBLE_EQ(cp.makespan, 2.2);
  // The path crosses the message edge: both execution legs plus a recv
  // delay; step durations tile the makespan.
  EXPECT_GT(cp.recv_delay, 0.0);
  EXPECT_GT(cp.execute_time, 1.5);
  double steps = 0.0;
  for (const tr::PathStep& s : cp.steps) steps += s.duration();
  EXPECT_NEAR(steps, cp.makespan, 1e-9);
  bool consume_on_path = false;
  for (const tr::SpanCritical& sc : cp.by_span) {
    if (sc.name == "consume" && sc.critical() > 0.0) consume_on_path = true;
  }
  EXPECT_TRUE(consume_on_path);

  // The merged trace also exports as valid chrome JSON.
  const std::string json = tr::chrome_trace_json(rec);
  fxtest::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
}

TEST(Trace, ChromeExportNonFiniteAccountingEmitsNull) {
  // Regression: accounting values are printed straight into JSON; a
  // non-finite busy/wait used to render as a bare `inf`/`nan` token,
  // making the whole file unparseable. They must surface as null.
  tr::TraceRecorder rec(1);
  double t = 0.0;
  rec.set_clock([&](int) { return t; });
  rec.begin_span(0, "poisoned", "test");
  rec.add_busy(0, std::numeric_limits<double>::infinity());
  t = 1.0;
  rec.end_span(0);
  rec.finalize(1.0);

  const std::string json = tr::chrome_trace_json(rec);
  fxtest::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}
