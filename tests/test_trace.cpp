// Tests for the structured event tracer: span nesting, disabled-tracing
// no-ops, machine-driven event capture, chrome trace export (validated with
// a mini JSON parser), the phase report, and the critical-path analyzer on
// a hand-built two-processor send/receive log.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "core/fx.hpp"
#include "trace/chrome_export.hpp"
#include "trace/critical_path.hpp"
#include "trace/phase_report.hpp"
#include "trace/trace.hpp"

namespace mx = fxpar::machine;
namespace tr = fxpar::trace;

namespace {

mx::MachineConfig test_config(int p) {
  mx::MachineConfig c;
  c.num_procs = p;
  c.send_overhead = 1.0;
  c.recv_overhead = 2.0;
  c.latency = 10.0;
  c.byte_time = 0.5;
  c.barrier_base = 1.0;
  c.barrier_stage = 1.0;
  c.io_latency = 100.0;
  c.io_byte_time = 1.0;
  c.stack_bytes = 128 * 1024;
  c.trace = true;
  return c;
}

/// Minimal recursive-descent JSON validator: accepts exactly the RFC 8259
/// value grammar, rejects trailing garbage.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        pos_ += 2;
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control character
      } else {
        ++pos_;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

TEST(Trace, SpanNestingAndTiming) {
  tr::TraceRecorder rec(1);
  double t = 0.0;
  rec.set_clock([&](int) { return t; });

  rec.begin_span(0, "outer", "test");
  EXPECT_EQ(rec.open_depth(0), 1);
  t = 1.0;
  rec.begin_span(0, "inner", "test");
  EXPECT_EQ(rec.open_depth(0), 2);
  rec.add_busy(0, 2.0);
  t = 3.0;
  rec.end_span(0);
  EXPECT_EQ(rec.open_depth(0), 1);
  t = 4.0;
  rec.end_span(0);
  EXPECT_EQ(rec.open_depth(0), 0);
  rec.finalize(4.0);

  ASSERT_EQ(rec.spans().size(), 2u);
  // Sorted by (proc, t0, depth): outer first.
  const tr::Span& outer = rec.spans()[0];
  const tr::Span& inner = rec.spans()[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_DOUBLE_EQ(outer.t0, 0.0);
  EXPECT_DOUBLE_EQ(outer.t1, 4.0);
  EXPECT_DOUBLE_EQ(outer.busy, 2.0);  // inclusive: inner busy counts here too
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_DOUBLE_EQ(inner.t0, 1.0);
  EXPECT_DOUBLE_EQ(inner.t1, 3.0);
  EXPECT_DOUBLE_EQ(inner.busy, 2.0);
}

TEST(Trace, FinalizeClosesOpenSpans) {
  tr::TraceRecorder rec(2);
  double t = 0.0;
  rec.set_clock([&](int) { return t; });
  rec.begin_span(0, "left-open", "test");
  t = 5.0;
  rec.finalize(7.5);
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.spans()[0].t1, 7.5);
  EXPECT_DOUBLE_EQ(rec.finish_time(), 7.5);
  EXPECT_EQ(rec.open_depth(0), 0);
}

TEST(Trace, ScopedSpanIsInertWhenDefaultConstructed) {
  tr::ScopedSpan inert;  // no recorder attached: all operations are no-ops
  inert.close();

  tr::TraceRecorder rec(1);
  rec.set_clock([](int) { return 0.0; });
  {
    tr::ScopedSpan sp(&rec, 0);
    rec.begin_span(0, "scoped", "test");
    tr::ScopedSpan moved = std::move(sp);
    moved.close();
    moved.close();  // idempotent
    EXPECT_EQ(rec.open_depth(0), 0);
  }
}

TEST(Trace, DisabledTracingIsNoOp) {
  mx::MachineConfig cfg = test_config(2);
  cfg.trace = false;
  mx::Machine m(cfg);
  EXPECT_EQ(m.tracer(), nullptr);
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    // ctx.span must be inert, not crash, when tracing is off.
    auto sp = ctx.span("unused", "test");
    ctx.charge(1.0);
    ctx.barrier(ctx.group());
  });
  EXPECT_EQ(res.trace, nullptr);

  // Tracing never changes modeled time: same program, traced, same clock.
  mx::Machine traced(test_config(2));
  const mx::RunResult res2 = traced.run([](mx::Context& ctx) {
    auto sp = ctx.span("unused", "test");
    ctx.charge(1.0);
    ctx.barrier(ctx.group());
  });
  ASSERT_NE(res2.trace, nullptr);
  EXPECT_DOUBLE_EQ(res2.finish_time, res.finish_time);
}

TEST(Trace, MachineRunRecordsMessageEdges) {
  mx::Machine m(test_config(2));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 7, mx::Payload(4));  // busy [0,3], arrival 13
    } else {
      (void)ctx.recv_phys(0, 7);
    }
  });
  ASSERT_NE(res.trace, nullptr);
  const tr::TraceRecorder& rec = *res.trace;

  ASSERT_EQ(rec.messages().size(), 1u);
  const tr::MessageRecord& msg = rec.messages()[0];
  EXPECT_EQ(msg.src, 0);
  EXPECT_EQ(msg.dst, 1);
  EXPECT_EQ(msg.bytes, 4u);
  EXPECT_DOUBLE_EQ(msg.send_t0, 0.0);
  EXPECT_DOUBLE_EQ(msg.send_t1, 3.0);
  EXPECT_DOUBLE_EQ(msg.recv_t, 13.0);

  // The receiver's stall is one recv wait [0, 13] caused by the send end.
  ASSERT_EQ(rec.waits().size(), 1u);
  const tr::Wait& w = rec.waits()[0];
  EXPECT_EQ(w.kind, tr::WaitKind::Recv);
  EXPECT_EQ(w.proc, 1);
  EXPECT_DOUBLE_EQ(w.t0, 0.0);
  EXPECT_DOUBLE_EQ(w.t1, 13.0);
  EXPECT_EQ(w.cause_proc, 0);
  EXPECT_DOUBLE_EQ(w.cause_time, 3.0);

  EXPECT_DOUBLE_EQ(rec.proc_totals()[1].recv_wait, 13.0);
}

TEST(Trace, BarrierRecordsModeledLastArriver) {
  mx::Machine m(test_config(3));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    ctx.charge(ctx.phys_rank() == 1 ? 9.0 : 1.0);  // proc 1 arrives last
    ctx.barrier(ctx.group());
  });
  const tr::TraceRecorder& rec = *res.trace;
  ASSERT_EQ(rec.barriers().size(), 1u);
  const tr::BarrierRecord& b = rec.barriers()[0];
  EXPECT_EQ(b.last_arriver, 1);
  EXPECT_DOUBLE_EQ(b.release, 9.0 + 1.0 + 1.0 * 2.0);  // base + stage*ceil(log2 3)

  // Early arrivers wait [1, release] with the happens-before edge at the
  // last arrival; the last arriver waits only for the barrier cost itself.
  for (const tr::Wait& w : rec.waits()) {
    EXPECT_EQ(w.kind, tr::WaitKind::Barrier);
    EXPECT_EQ(w.cause_proc, 1);
    EXPECT_DOUBLE_EQ(w.cause_time, 9.0);
    EXPECT_DOUBLE_EQ(w.t1, b.release);
    EXPECT_DOUBLE_EQ(w.t0, w.proc == 1 ? 9.0 : 1.0);
  }
}

TEST(Trace, ChromeExportIsValidJson) {
  mx::Machine m(test_config(2));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    auto sp = ctx.span("phase \"one\"\n", "test");  // needs escaping
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 3, mx::Payload(8));
    } else {
      (void)ctx.recv_phys(0, 3);
    }
    ctx.barrier(ctx.group());
  });
  const std::string json = tr::chrome_trace_json(*res.trace);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete events
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // flow end
  EXPECT_NE(json.find("phase \\\"one\\\"\\n"), std::string::npos);
}

TEST(Trace, PhaseReportAggregatesNamedSpans) {
  mx::Machine m(test_config(2));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    {
      auto sp = ctx.span("compute", "test");
      ctx.charge(2.0);
    }
    auto sp = ctx.span("sync", "test");
    ctx.barrier(ctx.group());
  });
  const tr::PhaseReport rep = tr::phase_report(*res.trace);
  EXPECT_EQ(rep.num_procs, 2);
  EXPECT_GT(rep.makespan, 0.0);
  // All activity happens inside the two named spans.
  EXPECT_NEAR(rep.attributed_fraction, 1.0, 1e-9);

  const tr::PhaseStats* compute = nullptr;
  const tr::PhaseStats* sync = nullptr;
  for (const tr::PhaseStats& p : rep.phases) {
    if (p.name == "compute") compute = &p;
    if (p.name == "sync") sync = &p;
  }
  ASSERT_NE(compute, nullptr);
  ASSERT_NE(sync, nullptr);
  EXPECT_EQ(compute->instances, 2);
  EXPECT_DOUBLE_EQ(compute->busy, 4.0);  // 2 procs x 2 s
  EXPECT_DOUBLE_EQ(compute->barrier_wait, 0.0);
  EXPECT_DOUBLE_EQ(sync->busy, 0.0);
  EXPECT_GT(sync->barrier_wait, 0.0);
  EXPECT_FALSE(rep.to_string().empty());
}

TEST(Trace, CriticalPathOnHandBuiltTwoProcLog) {
  // proc 0 computes [0, 1.0], sends over [1.0, 1.1]; the message is ready
  // at proc 1 at 1.2, which then computes [1.2, 2.2]. The critical path is
  // proc 0's execute + the wire delay + proc 1's execute.
  tr::TraceRecorder rec(2);
  double clock[2] = {0.0, 0.0};
  rec.set_clock([&](int p) { return clock[p]; });

  // Mirror a machine run: a depth-0 root span per proc, named work inside.
  rec.begin_span(0, "program", "root");
  rec.begin_span(1, "program", "root");
  rec.begin_span(0, "produce", "test");
  rec.begin_span(1, "consume", "test");
  rec.add_busy(0, 1.1);
  clock[0] = 1.1;
  const std::uint64_t id = rec.message_sent(0, 1, 42, 64, 1.0, 1.1);
  rec.message_received(id, 0.0, 1.2);
  clock[1] = 1.2;
  rec.add_busy(1, 1.0);
  clock[1] = 2.2;
  rec.end_span(0);
  rec.end_span(1);
  rec.finalize(2.2);

  const tr::CriticalPathReport cp = tr::critical_path(rec);
  EXPECT_DOUBLE_EQ(cp.makespan, 2.2);
  EXPECT_NEAR(cp.execute_time, 2.1, 1e-9);
  EXPECT_NEAR(cp.recv_delay, 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(cp.barrier_delay, 0.0);
  EXPECT_NEAR(cp.attributed_fraction, 1.0, 1e-9);

  ASSERT_GE(cp.steps.size(), 3u);
  // Steps come back in time order: produce, wire delay, consume.
  EXPECT_EQ(cp.steps.front().kind, tr::PathStep::Kind::Execute);
  EXPECT_EQ(cp.steps.front().proc, 0);
  EXPECT_EQ(cp.steps.front().span, "produce");
  EXPECT_EQ(cp.steps.back().kind, tr::PathStep::Kind::Execute);
  EXPECT_EQ(cp.steps.back().proc, 1);
  EXPECT_EQ(cp.steps.back().span, "consume");
  bool saw_delay = false;
  for (const tr::PathStep& st : cp.steps) {
    if (st.kind == tr::PathStep::Kind::Delay) {
      saw_delay = true;
      EXPECT_EQ(st.wait_kind, tr::WaitKind::Recv);
      EXPECT_NEAR(st.duration(), 0.1, 1e-9);
    }
  }
  EXPECT_TRUE(saw_delay);
  EXPECT_FALSE(cp.to_string().empty());
}

TEST(Trace, CriticalPathCrossesTaskRegions) {
  // Two subgroups; "slow" computes 4x longer, then a full barrier. The
  // critical path must run through on:slow, not on:fast.
  mx::MachineConfig cfg = test_config(4);
  mx::Machine m(cfg);
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    fxpar::core::TaskPartition part(ctx, {{"fast", 2}, {"slow", 2}}, "demo");
    fxpar::core::TaskRegion region(ctx, part);
    region.on("fast", [&] { ctx.charge(1.0); });
    region.on("slow", [&] { ctx.charge(4.0); });
    ctx.barrier(ctx.group());
  });
  const tr::CriticalPathReport cp = tr::critical_path(*res.trace);
  double slow_on_path = 0.0;
  double fast_on_path = 0.0;
  for (const tr::SpanCritical& sc : cp.by_span) {
    if (sc.name == "on:slow") slow_on_path = sc.critical();
    if (sc.name == "on:fast") fast_on_path = sc.critical();
  }
  EXPECT_NEAR(slow_on_path, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(fast_on_path, 0.0);
}

TEST(Trace, IoWaitsAreSerializedAndAttributed) {
  mx::Machine m(test_config(2));
  const mx::RunResult res = m.run([](mx::Context& ctx) {
    ctx.io(10);  // both procs at t=0: device serializes them
  });
  const tr::TraceRecorder& rec = *res.trace;
  ASSERT_EQ(rec.waits().size(), 2u);
  double total_io = 0.0;
  for (const tr::Wait& w : rec.waits()) {
    EXPECT_EQ(w.kind, tr::WaitKind::Io);
    total_io += w.t1 - w.t0;
  }
  // First op: 110 s; second queues behind it: 220 s.
  EXPECT_DOUBLE_EQ(total_io, 110.0 + 220.0);
}
