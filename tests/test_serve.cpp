// Serving-layer tests: the RemapPolicy hysteresis contract and the
// end-to-end determinism guarantee of serve_streams — per-stream results
// bit-identical to an uninterrupted single-mapping run of the same data
// ids, across a forced remap boundary, on every backend (docs/serving.md).
//
// The policy tests run against the real FFT-Hist cost model at a size
// whose mapping frontier has distinct points (n=32 on 8 processors), with
// the boundary rates derived from the model itself so the tests hold on
// any cost-model revision that keeps the frontier non-flat.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "apps/ffthist.hpp"
#include "apps/radar.hpp"
#include "serve/server.hpp"

#if defined(__SANITIZE_THREAD__)
#define FXPAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FXPAR_TSAN 1
#endif
#endif

#ifdef FXPAR_TSAN
#define FXPAR_SKIP_SIM_UNDER_TSAN() \
  GTEST_SKIP() << "simulator fibers (ucontext) are incompatible with ThreadSanitizer"
#else
#define FXPAR_SKIP_SIM_UNDER_TSAN() (void)0
#endif

namespace ap = fxpar::apps;
namespace ex = fxpar::exec;
namespace mx = fxpar::machine;
namespace sv = fxpar::serve;
namespace sched = fxpar::sched;
using fxpar::MachineConfig;

namespace {

constexpr int kProcs = 8;

ap::FftHistConfig hist_cfg(int num_sets) {
  ap::FftHistConfig cfg;
  cfg.n = 32;  // mapping frontier has distinct points at this size
  cfg.bins = 8;
  cfg.num_sets = num_sets;
  return cfg;
}

/// The model plus the two capacities that bracket the remap boundary:
/// what the latency-optimal mapping sustains and what the machine can
/// sustain at most.
struct Landscape {
  sched::PipelineModel model;
  double latmin_thr;
  double max_thr;
};

Landscape landscape(int num_sets = 1) {
  Landscape l{ap::ffthist_model(MachineConfig::paragon(kProcs), hist_cfg(num_sets)),
              0.0, 0.0};
  l.latmin_thr = sched::min_latency_mapping(l.model, kProcs, 0.0).throughput;
  l.max_thr = sched::max_throughput_mapping(l.model, kProcs).throughput;
  return l;
}

// The FFT-Hist frontier at this size gains throughput without losing
// latency, so it can never justify a latency-motivated down remap; the
// full-size radar pipeline's frontier does trade the two, which is what
// the down-remap test needs.
constexpr int kRadarProcs = 16;

Landscape radar_landscape() {
  const ap::RadarConfig cfg;
  Landscape l{ap::radar_model(MachineConfig::paragon(kRadarProcs), cfg), 0.0, 0.0};
  l.latmin_thr = sched::min_latency_mapping(l.model, kRadarProcs, 0.0).throughput;
  l.max_thr = sched::max_throughput_mapping(l.model, kRadarProcs).throughput;
  return l;
}

}  // namespace

// ---------------------------------------------------------------------------
// RemapPolicy
// ---------------------------------------------------------------------------

TEST(RemapPolicy, FrontierIsNotFlat) {
  // Every boundary-crossing test below assumes a real frontier: a rate
  // exists that the latency-optimal mapping cannot sustain but the
  // machine can.
  const Landscape l = landscape();
  ASSERT_GT(l.latmin_thr, 0.0);
  ASSERT_GT(l.max_thr, l.latmin_thr * 1.01);
}

TEST(RemapPolicy, RejectsBadConfig) {
  const Landscape l = landscape();
  EXPECT_THROW(sv::RemapPolicy(l.model, 0), std::invalid_argument);
  sv::PolicyConfig bad_safety;
  bad_safety.safety = 0.5;
  EXPECT_THROW(sv::RemapPolicy(l.model, kProcs, bad_safety), std::invalid_argument);
  sv::PolicyConfig bad_dwell;
  bad_dwell.dwell_up = 0;
  EXPECT_THROW(sv::RemapPolicy(l.model, kProcs, bad_dwell), std::invalid_argument);
}

TEST(RemapPolicy, InitialInstallIsNotARemap) {
  const Landscape l = landscape();
  sv::PolicyConfig cfg;
  cfg.safety = 1.0;
  sv::RemapPolicy policy(l.model, kProcs, cfg);
  EXPECT_FALSE(policy.primed());

  const double low = 0.3 * l.latmin_thr;
  const sv::RemapDecision d = policy.decide(low);
  EXPECT_TRUE(d.initial);
  EXPECT_TRUE(d.slo_feasible);
  EXPECT_EQ(policy.remaps(), 0);
  EXPECT_TRUE(policy.primed());
  EXPECT_GE(d.mapping.throughput, low);

  // NaN / negative rates are treated as zero load, not an error.
  EXPECT_EQ(policy.decide(std::nan("")).offered_rate, 0.0);
  EXPECT_EQ(policy.decide(-5.0).offered_rate, 0.0);
  EXPECT_EQ(policy.remaps(), 0);
}

TEST(RemapPolicy, UpRemapWaitsForDwellThenFires) {
  const Landscape l = landscape();
  sv::PolicyConfig cfg;
  cfg.safety = 1.0;
  cfg.dwell_up = 2;
  sv::RemapPolicy policy(l.model, kProcs, cfg);

  const double low = 0.3 * l.latmin_thr;
  const double high = 0.5 * (l.latmin_thr + l.max_thr);
  policy.decide(low);
  const double low_capacity = policy.current().throughput;
  ASSERT_LT(low_capacity, high);  // the high rate really crosses the boundary

  // First shortfall epoch: still dwelling.
  sv::RemapDecision d = policy.decide(high);
  EXPECT_EQ(d.action, sv::RemapAction::Keep);
  EXPECT_EQ(policy.remaps(), 0);

  // Second consecutive shortfall epoch: the up remap fires.
  d = policy.decide(high);
  EXPECT_EQ(d.action, sv::RemapAction::Remap);
  EXPECT_EQ(policy.remaps(), 1);
  EXPECT_TRUE(d.slo_feasible);
  EXPECT_GE(d.mapping.throughput, high);
}

TEST(RemapPolicy, DownRemapWaitsForDwellAndBuysLatency) {
  const Landscape l = radar_landscape();
  ASSERT_GT(l.max_thr, l.latmin_thr * 1.01);
  sv::PolicyConfig cfg;
  cfg.safety = 1.0;
  cfg.dwell_up = 1;
  cfg.dwell_down = 2;
  cfg.latency_improvement = 0.0;  // any strict improvement justifies it
  sv::RemapPolicy policy(l.model, kRadarProcs, cfg);

  const double low = 0.3 * l.latmin_thr;
  const double high = 0.5 * (l.latmin_thr + l.max_thr);
  policy.decide(low);
  policy.decide(high);  // dwell_up=1: remap up immediately
  ASSERT_EQ(policy.remaps(), 1);
  const double high_latency = policy.current().latency;

  // Load drops back: one justified epoch dwells, the second remaps down
  // to a strictly lower-latency mapping.
  sv::RemapDecision d = policy.decide(low);
  EXPECT_EQ(d.action, sv::RemapAction::Keep);
  EXPECT_EQ(policy.remaps(), 1);
  d = policy.decide(low);
  EXPECT_EQ(d.action, sv::RemapAction::Remap);
  EXPECT_EQ(policy.remaps(), 2);
  EXPECT_LT(d.mapping.latency, high_latency);
}

TEST(RemapPolicy, OscillatingLoadFasterThanDwellNeverThrashes) {
  const Landscape l = landscape();
  sv::PolicyConfig cfg;
  cfg.safety = 1.0;
  cfg.dwell_up = 2;
  cfg.dwell_down = 2;
  cfg.latency_improvement = 0.0;
  sv::RemapPolicy policy(l.model, kProcs, cfg);

  const double low = 0.3 * l.latmin_thr;
  const double high = 0.5 * (l.latmin_thr + l.max_thr);
  policy.decide(low);
  const auto installed = policy.current();

  // The load flips across the boundary every epoch — faster than either
  // dwell window — so neither streak ever completes and the installed
  // mapping never changes.
  for (int i = 0; i < 12; ++i) {
    policy.decide(i % 2 == 0 ? high : low);
  }
  EXPECT_EQ(policy.remaps(), 0);
  EXPECT_TRUE(policy.current().same_modules(installed));
}

TEST(RemapPolicy, InfeasibleSloServesBestEffortAndRecovers) {
  const Landscape l = landscape();
  sv::PolicyConfig cfg;
  cfg.safety = 1.0;
  cfg.dwell_up = 1;
  cfg.dwell_down = 1;
  sv::RemapPolicy policy(l.model, kProcs, cfg);

  // An impossible rate: the initial install already falls back to the
  // best-effort maximum-throughput mapping and reports the unmet SLO.
  sv::RemapDecision d = policy.decide(1e12);
  EXPECT_TRUE(d.initial);
  EXPECT_FALSE(d.slo_feasible);
  EXPECT_NEAR(d.mapping.throughput, l.max_thr, 1e-9 * l.max_thr);

  // Still impossible: already on best-effort, so no remap is counted.
  d = policy.decide(1e12);
  EXPECT_EQ(d.action, sv::RemapAction::Infeasible);
  EXPECT_FALSE(d.slo_feasible);
  EXPECT_EQ(policy.remaps(), 0);

  // The load returns to feasible territory: the policy recovers off the
  // best-effort mapping (a real, counted remap) and the SLO is met again.
  d = policy.decide(0.3 * l.latmin_thr);
  EXPECT_EQ(d.action, sv::RemapAction::Remap);
  EXPECT_TRUE(d.slo_feasible);
  EXPECT_EQ(policy.remaps(), 1);
}

// ---------------------------------------------------------------------------
// serve_streams
// ---------------------------------------------------------------------------

namespace {

/// Three-phase (low, high, low) arrival trace over three tenant streams;
/// the high phase crosses the latency-optimal mapping's capacity so the
/// dynamic driver must remap. Ids are assigned in global arrival order.
std::vector<sv::ServeRequest> boundary_trace(const Landscape& l, int per_phase) {
  const double low = 0.3 * l.latmin_thr;
  const double high = 0.5 * (l.latmin_thr + l.max_thr);
  std::vector<sv::ServeRequest> all;
  double t0 = 0.0;
  int id = 0;
  for (double rate : {low, high, low}) {
    for (int i = 0; i < per_phase; ++i) {
      sv::ServeRequest r;
      r.stream = i % 3;
      r.seq = i / 3;
      r.arrival_t = t0 + static_cast<double>(i) / rate;
      r.data_id = id++;
      all.push_back(r);
    }
    t0 += static_cast<double>(per_phase) / rate;
  }
  return all;
}

struct ServeRun {
  std::vector<std::vector<std::int64_t>> sink;
  sv::ServeReport report;
};

ServeRun run_boundary_serve(MachineConfig mcfg, const Landscape& l,
                            const std::vector<sv::ServeRequest>& arrivals) {
  ServeRun out;
  const auto cfg = hist_cfg(static_cast<int>(arrivals.size()));
  const auto stages = ap::ffthist_stages(cfg, &out.sink);
  mx::Machine machine(mcfg);
  sv::ServeConfig scfg;
  scfg.max_batch = 8;
  scfg.policy.safety = 1.0;
  scfg.policy.latency_improvement = 0.05;
  scfg.epilogue_factory = sv::make_batch_funnel_factory(out.sink);
  out.report = sv::serve_streams<ap::Complex>(machine, stages, l.model, arrivals, scfg);
  return out;
}

MachineConfig backend_cfg(ex::BackendKind kind) {
  auto c = MachineConfig::paragon(kProcs);
  c.backend = kind;
  c.stack_bytes = 256 * 1024;
  return c;
}

MachineConfig proc_cfg(ex::TransportKind transport) {
  auto c = backend_cfg(ex::BackendKind::Proc);
  c.transport = transport;
  return c;
}

void expect_same_trajectory(const sv::ServeReport& a, const sv::ServeReport& b,
                            const char* what) {
  // The virtual clock makes the whole serving trajectory a function of the
  // arrival trace and the cost model only — backends must agree exactly.
  EXPECT_EQ(a.remaps, b.remaps) << what;
  ASSERT_EQ(a.epochs.size(), b.epochs.size()) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].remapped, b.epochs[e].remapped) << what << " epoch " << e;
    EXPECT_EQ(a.epochs[e].sets, b.epochs[e].sets) << what << " epoch " << e;
    EXPECT_EQ(a.epochs[e].mapping, b.epochs[e].mapping) << what << " epoch " << e;
  }
}

}  // namespace

TEST(ServeStreams, RejectsBadConfig) {
  const Landscape l = landscape(2);
  const auto cfg = hist_cfg(2);
  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);
  mx::Machine machine(MachineConfig::paragon(4));
  std::vector<sv::ServeRequest> arrivals(1);

  sv::ServeConfig bad_batch;
  bad_batch.max_batch = 0;
  EXPECT_THROW(sv::serve_streams<ap::Complex>(machine, stages, l.model, arrivals,
                                              bad_batch),
               std::invalid_argument);
  sv::ServeConfig bad_window;
  bad_window.rate_window = 1;
  EXPECT_THROW(sv::serve_streams<ap::Complex>(machine, stages, l.model, arrivals,
                                              bad_window),
               std::invalid_argument);
}

TEST(ServeStreams, RemapBoundaryBitParityAcrossBackends) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const Landscape l = landscape();
  const auto arrivals = boundary_trace(l, 16);
  const int total = static_cast<int>(arrivals.size());

  // Uninterrupted baseline: the same data ids 0..total-1 through a single
  // pinned mapping on the simulator, no serving loop at all.
  std::vector<std::vector<std::int64_t>> baseline;
  {
    const auto cfg = hist_cfg(total);
    const auto stages = ap::ffthist_stages(cfg, &baseline);
    const auto modules = ap::to_stream_modules(
        fxpar::sched::min_latency_mapping(l.model, kProcs, 0.0));
    ap::run_stream_pipeline<ap::Complex>(MachineConfig::paragon(kProcs), stages,
                                         modules, total);
  }

  const ServeRun sim = run_boundary_serve(backend_cfg(ex::BackendKind::Sim), l, arrivals);
  const ServeRun thr =
      run_boundary_serve(backend_cfg(ex::BackendKind::Threads), l, arrivals);
  const ServeRun shm = run_boundary_serve(proc_cfg(ex::TransportKind::Shm), l, arrivals);
  const ServeRun tcp = run_boundary_serve(proc_cfg(ex::TransportKind::Tcp), l, arrivals);

  // The high phase must actually force a remap, and every backend must
  // tell the identical serving story.
  EXPECT_GE(sim.report.remaps, 1);
  EXPECT_EQ(sim.report.requests.size(), static_cast<std::size_t>(total));
  expect_same_trajectory(sim.report, thr.report, "sim vs threads");
  expect_same_trajectory(sim.report, shm.report, "sim vs proc/shm");
  expect_same_trajectory(sim.report, tcp.report, "sim vs proc/tcp");

  // Per-stream bit parity: a request's result depends only on its data id,
  // never on the mapping, batch or backend that served it.
  for (int k = 0; k < total; ++k) {
    const auto& ref = baseline[static_cast<std::size_t>(k)];
    for (const ServeRun* run : {&sim, &thr, &shm, &tcp}) {
      const auto& got = run->sink[static_cast<std::size_t>(k)];
      ASSERT_EQ(got.size(), ref.size()) << "data set " << k;
      ASSERT_EQ(std::memcmp(got.data(), ref.data(),
                            ref.size() * sizeof(std::int64_t)),
                0)
          << "data set " << k;
    }
    EXPECT_EQ(ref, ap::ffthist_reference(hist_cfg(total), k)) << "data set " << k;
  }
}

TEST(ServeStreams, BoundedQueueShedsAndBurstReportsInfeasible) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const Landscape l = landscape();

  // Eight simultaneous arrivals against a queue of two: six are shed, the
  // burst reads as an unbounded offered rate, and the epoch is served
  // best-effort with the unmet SLO reported.
  std::vector<sv::ServeRequest> arrivals;
  for (int i = 0; i < 8; ++i) {
    sv::ServeRequest r;
    r.stream = i % 2;
    r.seq = i / 2;
    r.arrival_t = 0.0;
    r.data_id = i;
    arrivals.push_back(r);
  }

  std::vector<std::vector<std::int64_t>> sink;
  const auto cfg = hist_cfg(8);
  const auto stages = ap::ffthist_stages(cfg, &sink);
  mx::Machine machine(backend_cfg(ex::BackendKind::Sim));
  sv::ServeConfig scfg;
  scfg.max_queue = 2;
  scfg.epilogue_factory = sv::make_batch_funnel_factory(sink);
  const auto report =
      sv::serve_streams<ap::Complex>(machine, stages, l.model, arrivals, scfg);

  EXPECT_EQ(report.requests.size(), 2u);
  EXPECT_EQ(report.shed.size(), 6u);
  ASSERT_FALSE(report.epochs.empty());
  EXPECT_FALSE(report.epochs[0].slo_feasible);
  EXPECT_GE(report.infeasible_epochs, 1);
  for (const auto& rr : report.requests) {
    EXPECT_EQ(sink[static_cast<std::size_t>(rr.data_id)],
              ap::ffthist_reference(cfg, rr.data_id))
        << "data set " << rr.data_id;
  }

  // The serving state stays readable on /healthz after the driver returns.
  const std::string hz = machine.healthz_json();
  EXPECT_NE(hz.find("\"serve\":"), std::string::npos);
  EXPECT_NE(hz.find("\"shed\":6"), std::string::npos);
}
