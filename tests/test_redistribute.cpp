// Tests for general redistribution: assignment across distributions and
// groups, permuted (transpose) assignment, shifted (section) assignment,
// gather_full, and the minimal-participating-set property.
#include <gtest/gtest.h>

#include <tuple>

#include "dist/redistribute.hpp"
#include "machine/context.hpp"

namespace ds = fxpar::dist;
namespace mx = fxpar::machine;
namespace pg = fxpar::pgroup;

namespace {

mx::MachineConfig cfg(int p) {
  auto c = mx::MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

ds::DimDist dist_by_id(int id) {
  switch (id) {
    case 0: return ds::DimDist::block();
    case 1: return ds::DimDist::cyclic();
    case 2: return ds::DimDist::block_cyclic(3);
    default: return ds::DimDist::collapsed();
  }
}

}  // namespace

// Property sweep: any 1-D redistribution preserves content.
class Redist1D : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Redist1D, ContentPreservedAcrossDistributions) {
  const int src_kind = std::get<0>(GetParam());
  const int dst_kind = std::get<1>(GetParam());
  const int p = std::get<2>(GetParam());
  constexpr std::int64_t kN = 37;
  mx::Machine m(cfg(p));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(p);
    ds::DistArray<std::int64_t> src(ctx, ds::Layout(g, {kN}, {dist_by_id(src_kind)}), "src");
    ds::DistArray<std::int64_t> dst(ctx, ds::Layout(g, {kN}, {dist_by_id(dst_kind)}), "dst");
    src.fill([](std::span<const std::int64_t> gi) { return gi[0] * 7 + 1; });
    dst.fill_value(-1);
    ds::assign(ctx, dst, src);
    dst.for_each_owned([](std::span<const std::int64_t> gi, std::int64_t& v) {
      EXPECT_EQ(v, gi[0] * 7 + 1) << "at " << gi[0];
    });
  });
}

INSTANTIATE_TEST_SUITE_P(AllPairs, Redist1D,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 2, 4)));

TEST(Redistribute, AcrossDisjointGroups) {
  mx::Machine m(cfg(6));
  const pg::ProcessorGroup ga({0, 1, 2});
  const pg::ProcessorGroup gb({3, 4, 5});
  m.run([&](mx::Context& ctx) {
    ds::DistArray<int> a(ctx, ds::Layout(ga, {12}, {ds::DimDist::block()}), "a");
    ds::DistArray<int> b(ctx, ds::Layout(gb, {12}, {ds::DimDist::cyclic()}), "b");
    a.fill([](std::span<const std::int64_t> g) { return static_cast<int>(g[0] + 100); });
    ds::assign(ctx, b, a);
    b.for_each_owned([](std::span<const std::int64_t> g, int& v) {
      EXPECT_EQ(v, static_cast<int>(g[0] + 100));
    });
  });
}

TEST(Redistribute, TwoDimChangeOfDistribution) {
  // (BLOCK, *) -> (*, BLOCK): the FFT row/column exchange.
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    ds::DistArray<double> rows(
        ctx, ds::Layout(g, {8, 8}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "rows");
    ds::DistArray<double> cols(
        ctx, ds::Layout(g, {8, 8}, {ds::DimDist::collapsed(), ds::DimDist::block()}), "cols");
    rows.fill([](std::span<const std::int64_t> gi) {
      return static_cast<double>(gi[0] * 8 + gi[1]);
    });
    ds::assign(ctx, cols, rows);
    cols.for_each_owned([](std::span<const std::int64_t> gi, double& v) {
      EXPECT_DOUBLE_EQ(v, static_cast<double>(gi[0] * 8 + gi[1]));
    });
  });
}

TEST(Redistribute, TransposeIsPermutedAssign) {
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    ds::DistArray<int> a(
        ctx, ds::Layout(g, {6, 4}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "a");
    ds::DistArray<int> t(
        ctx, ds::Layout(g, {4, 6}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "t");
    a.fill([](std::span<const std::int64_t> gi) {
      return static_cast<int>(gi[0] * 10 + gi[1]);
    });
    ds::transpose(ctx, t, a);
    t.for_each_owned([](std::span<const std::int64_t> gi, int& v) {
      // t[j,i] == a[i,j] encoded as i*10+j.
      EXPECT_EQ(v, static_cast<int>(gi[1] * 10 + gi[0]));
    });
  });
}

TEST(Redistribute, ShiftedSectionAssign) {
  // Write an 8-element array into positions [4..12) of a 16-element array:
  // the quicksort merge step.
  mx::Machine m(cfg(4));
  const pg::ProcessorGroup sub({1, 2});
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    ds::DistArray<int> part(ctx, ds::Layout(sub, {8}, {ds::DimDist::block()}), "part");
    ds::DistArray<int> whole(ctx, ds::Layout(g, {16}, {ds::DimDist::block()}), "whole");
    part.fill([](std::span<const std::int64_t> gi) { return static_cast<int>(gi[0] + 1000); });
    whole.fill_value(-1);
    ds::assign_shifted(ctx, whole, {4}, part);
    whole.for_each_owned([](std::span<const std::int64_t> gi, int& v) {
      if (gi[0] >= 4 && gi[0] < 12) {
        EXPECT_EQ(v, static_cast<int>(gi[0] - 4 + 1000));
      } else {
        EXPECT_EQ(v, -1);
      }
    });
  });
}

TEST(Redistribute, ReplicatedDestinationBroadcasts) {
  mx::Machine m(cfg(3));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(3);
    ds::DistArray<int> src(ctx, ds::Layout(g, {9}, {ds::DimDist::block()}), "src");
    ds::DistArray<int> rep(ctx, ds::Layout(g, {9}, {ds::DimDist::collapsed()}), "rep");
    src.fill([](std::span<const std::int64_t> gi) { return static_cast<int>(gi[0] * 3); });
    ds::assign(ctx, rep, src);
    for (std::int64_t i = 0; i < 9; ++i) EXPECT_EQ(rep.at(i), static_cast<int>(i * 3));
  });
}

TEST(Redistribute, ReplicatedSourceScattersWithoutDuplicateTraffic) {
  mx::Machine m(cfg(4));
  const pg::ProcessorGroup src_g({0, 1});
  const pg::ProcessorGroup dst_g({1, 2, 3});
  mx::RunResult res;
  {
    mx::Machine m2(cfg(4));
    res = m2.run([&](mx::Context& ctx) {
      ds::DistArray<int> rep(ctx, ds::Layout(src_g, {8}, {ds::DimDist::collapsed()}), "rep");
      ds::DistArray<int> out(ctx, ds::Layout(dst_g, {8}, {ds::DimDist::block()}), "out");
      rep.fill([](std::span<const std::int64_t> gi) { return static_cast<int>(gi[0] + 5); });
      ds::assign(ctx, out, rep);
      out.for_each_owned([](std::span<const std::int64_t> gi, int& v) {
        EXPECT_EQ(v, static_cast<int>(gi[0] + 5));
      });
    });
  }
  // Proc 1 is in both groups: it self-serves. Only procs 2 and 3 receive.
  EXPECT_EQ(res.messages, 2u);
}

TEST(Redistribute, MinimalSubsetSkipsNonParticipants) {
  // Procs outside union(src, dst) must not advance their clocks at all.
  mx::Machine m(cfg(6));
  const pg::ProcessorGroup src_g({0, 1});
  const pg::ProcessorGroup dst_g({2, 3});
  m.run([&](mx::Context& ctx) {
    ds::DistArray<int> a(ctx, ds::Layout(src_g, {8}, {ds::DimDist::block()}), "a");
    ds::DistArray<int> b(ctx, ds::Layout(dst_g, {8}, {ds::DimDist::block()}), "b");
    a.fill_value(1);
    ds::assign(ctx, b, a);
    if (ctx.phys_rank() >= 4) {
      EXPECT_DOUBLE_EQ(ctx.now(), 0.0);  // skipped past, free of charge
    }
  });
}

TEST(Redistribute, GatherFullCollectsRowMajor) {
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    ds::DistArray<int> a(
        ctx, ds::Layout(g, {4, 4}, {ds::DimDist::block(), ds::DimDist::block()}), "a");
    a.fill([](std::span<const std::int64_t> gi) {
      return static_cast<int>(gi[0] * 4 + gi[1]);
    });
    const auto full = ds::gather_full(ctx, a, 0);
    if (ctx.phys_rank() == 0) {
      ASSERT_EQ(full.size(), 16u);
      for (int i = 0; i < 16; ++i) EXPECT_EQ(full[static_cast<std::size_t>(i)], i);
    } else {
      EXPECT_TRUE(full.empty());
    }
  });
}

TEST(Redistribute, SubsetBarrierBoundsRunAhead) {
  // With the default handshake the sender cannot complete assignment k+2
  // before the receiver has entered assignment k+1.
  mx::Machine mach(cfg(2));
  const pg::ProcessorGroup s({0});
  const pg::ProcessorGroup d({1});
  mach.run([&](mx::Context& ctx) {
    ds::DistArray<int> a(ctx, ds::Layout(s, {4}, {ds::DimDist::block()}), "a");
    ds::DistArray<int> b(ctx, ds::Layout(d, {4}, {ds::DimDist::block()}), "b");
    a.fill_value(1);
    for (int k = 0; k < 3; ++k) {
      ds::assign(ctx, b, a);
      if (ctx.phys_rank() == 1) ctx.charge(100.0);  // slow consumer
    }
    if (ctx.phys_rank() == 0) {
      // Sender was throttled by the consumer, not done at t~0.
      EXPECT_GT(ctx.now(), 100.0);
    }
  });
}

TEST(Redistribute, NoSyncModeLetsSenderRunAhead) {
  mx::Machine mach(cfg(2));
  const pg::ProcessorGroup s({0});
  const pg::ProcessorGroup d({1});
  mach.run([&](mx::Context& ctx) {
    ds::DistArray<int> a(ctx, ds::Layout(s, {4}, {ds::DimDist::block()}), "a");
    ds::DistArray<int> b(ctx, ds::Layout(d, {4}, {ds::DimDist::block()}), "b");
    a.fill_value(1);
    for (int k = 0; k < 3; ++k) {
      ds::assign(ctx, b, a, ds::AssignSync::None);
      if (ctx.phys_rank() == 1) ctx.charge(100.0);
    }
    if (ctx.phys_rank() == 0) {
      EXPECT_LT(ctx.now(), 1.0);  // deposits never wait
    }
  });
}

TEST(Redistribute, ShapeMismatchRejected) {
  mx::Machine m(cfg(2));
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(2);
    ds::DistArray<int> a(ctx, ds::Layout(g, {8}, {ds::DimDist::block()}), "a");
    ds::DistArray<int> b(ctx, ds::Layout(g, {9}, {ds::DimDist::block()}), "b");
    ds::assign(ctx, b, a);
  }),
               std::invalid_argument);
}

TEST(Redistribute, BadPermRejected) {
  mx::Machine m(cfg(2));
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(2);
    ds::DistArray<int> a(
        ctx, ds::Layout(g, {4, 4}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "a");
    ds::DistArray<int> b(
        ctx, ds::Layout(g, {4, 4}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "b");
    ds::assign_permuted(ctx, b, a, {0, 0});
  }),
               std::invalid_argument);
}

TEST(Redistribute, OffsetOverflowRejected) {
  mx::Machine m(cfg(2));
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(2);
    ds::DistArray<int> a(ctx, ds::Layout(g, {8}, {ds::DimDist::block()}), "a");
    ds::DistArray<int> b(ctx, ds::Layout(g, {8}, {ds::DimDist::block()}), "b");
    ds::assign_shifted(ctx, b, {1}, a);  // 8 + 1 > 8
  }),
               std::invalid_argument);
}

// 2-D property sweep across distribution pairs.
class Redist2D : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Redist2D, ContentPreserved) {
  const int a_kind = std::get<0>(GetParam());
  const int b_kind = std::get<1>(GetParam());
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    ds::DistArray<std::int64_t> a(
        ctx, ds::Layout(g, {9, 7}, {dist_by_id(a_kind), dist_by_id((a_kind + 1) % 4)}), "a");
    ds::DistArray<std::int64_t> b(
        ctx, ds::Layout(g, {9, 7}, {dist_by_id(b_kind), dist_by_id((b_kind + 2) % 4)}), "b");
    a.fill([](std::span<const std::int64_t> gi) { return gi[0] * 1000 + gi[1]; });
    b.fill_value(-7);
    ds::assign(ctx, b, a);
    b.for_each_owned([](std::span<const std::int64_t> gi, std::int64_t& v) {
      EXPECT_EQ(v, gi[0] * 1000 + gi[1]);
    });
  });
}

INSTANTIATE_TEST_SUITE_P(Pairs, Redist2D,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3)));

// 3-D arrays: content preservation and full permutation sweep.
TEST(Redist3D, ContentPreservedAcrossGroupsAndDistributions) {
  mx::Machine m(cfg(6));
  const pg::ProcessorGroup ga({0, 1, 2, 3});
  const pg::ProcessorGroup gb({2, 3, 4, 5});
  m.run([&](mx::Context& ctx) {
    ds::DistArray<std::int64_t> a(
        ctx, ds::Layout(ga, {4, 6, 5},
                        {ds::DimDist::collapsed(), ds::DimDist::block(), ds::DimDist::cyclic()}),
        "a");
    ds::DistArray<std::int64_t> b(
        ctx, ds::Layout(gb, {4, 6, 5},
                        {ds::DimDist::block(), ds::DimDist::collapsed(), ds::DimDist::block()}),
        "b");
    a.fill([](std::span<const std::int64_t> g) {
      return g[0] * 10000 + g[1] * 100 + g[2];
    });
    ds::assign(ctx, b, a);
    b.for_each_owned([](std::span<const std::int64_t> g, std::int64_t& v) {
      EXPECT_EQ(v, g[0] * 10000 + g[1] * 100 + g[2]);
    });
  });
}

class Redist3DPerm : public ::testing::TestWithParam<std::array<int, 3>> {};

TEST_P(Redist3DPerm, PermutedAssignPlacesEveryElement) {
  const auto perm = GetParam();
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    const std::vector<std::int64_t> src_shape{3, 4, 5};
    std::vector<std::int64_t> dst_shape(3);
    for (int dd = 0; dd < 3; ++dd) {
      dst_shape[static_cast<std::size_t>(dd)] =
          src_shape[static_cast<std::size_t>(perm[static_cast<std::size_t>(dd)])];
    }
    ds::DistArray<std::int64_t> a(
        ctx, ds::Layout(g, src_shape,
                        {ds::DimDist::block(), ds::DimDist::collapsed(), ds::DimDist::collapsed()}),
        "a");
    ds::DistArray<std::int64_t> b(
        ctx, ds::Layout(g, dst_shape,
                        {ds::DimDist::collapsed(), ds::DimDist::block(), ds::DimDist::collapsed()}),
        "b");
    a.fill([](std::span<const std::int64_t> gi) {
      return gi[0] * 100 + gi[1] * 10 + gi[2];
    });
    b.fill_value(-1);
    ds::assign_permuted(ctx, b, a,
                        {perm[0], perm[1], perm[2]});
    b.for_each_owned([&](std::span<const std::int64_t> gi, std::int64_t& v) {
      // dst[i0,i1,i2] == src[i_{perm[0]}...] means src index s with
      // s[perm[dd]] = gi[dd].
      std::array<std::int64_t, 3> s{};
      for (int dd = 0; dd < 3; ++dd) {
        s[static_cast<std::size_t>(perm[static_cast<std::size_t>(dd)])] =
            gi[static_cast<std::size_t>(dd)];
      }
      EXPECT_EQ(v, s[0] * 100 + s[1] * 10 + s[2]);
    });
  });
}

INSTANTIATE_TEST_SUITE_P(AllPerms, Redist3DPerm,
                         ::testing::Values(std::array<int, 3>{0, 1, 2},
                                           std::array<int, 3>{0, 2, 1},
                                           std::array<int, 3>{1, 0, 2},
                                           std::array<int, 3>{1, 2, 0},
                                           std::array<int, 3>{2, 0, 1},
                                           std::array<int, 3>{2, 1, 0}));

TEST(Redist3D, ShiftedSubCubeAssign) {
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    ds::DistArray<int> small(
        ctx, ds::Layout(g, {2, 3, 4},
                        {ds::DimDist::collapsed(), ds::DimDist::block(), ds::DimDist::collapsed()}),
        "small");
    ds::DistArray<int> big(
        ctx, ds::Layout(g, {4, 6, 8},
                        {ds::DimDist::block(), ds::DimDist::collapsed(), ds::DimDist::collapsed()}),
        "big");
    small.fill([](std::span<const std::int64_t> gi) {
      return static_cast<int>(gi[0] * 100 + gi[1] * 10 + gi[2]);
    });
    big.fill_value(-1);
    ds::assign_shifted(ctx, big, {1, 2, 3}, small);
    big.for_each_owned([](std::span<const std::int64_t> gi, int& v) {
      const bool inside = gi[0] >= 1 && gi[0] < 3 && gi[1] >= 2 && gi[1] < 5 &&
                          gi[2] >= 3 && gi[2] < 7;
      if (inside) {
        EXPECT_EQ(v, static_cast<int>((gi[0] - 1) * 100 + (gi[1] - 2) * 10 + (gi[2] - 3)));
      } else {
        EXPECT_EQ(v, -1);
      }
    });
  });
}

TEST(Redistribute, ScatterFullDistributesRowMajor) {
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    ds::DistArray<int> a(
        ctx, ds::Layout(g, {4, 4}, {ds::DimDist::block(), ds::DimDist::block()}), "a");
    std::vector<int> full;
    if (ctx.phys_rank() == 0) {
      for (int i = 0; i < 16; ++i) full.push_back(i * 11);
    }
    ds::scatter_full(ctx, a, 0, full);
    a.for_each_owned([](std::span<const std::int64_t> gi, int& v) {
      EXPECT_EQ(v, static_cast<int>(gi[0] * 4 + gi[1]) * 11);
    });
  });
}

TEST(Redistribute, ScatterThenGatherRoundTrips) {
  mx::Machine m(cfg(3));
  m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(3);
    ds::DistArray<double> a(ctx, ds::Layout(g, {10}, {ds::DimDist::cyclic()}), "a");
    std::vector<double> full;
    if (ctx.phys_rank() == 0) {
      for (int i = 0; i < 10; ++i) full.push_back(0.5 * i);
    }
    ds::scatter_full(ctx, a, 0, full);
    const auto back = ds::gather_full(ctx, a, 0);
    if (ctx.phys_rank() == 0) {
      EXPECT_EQ(back, full);
    }
  });
}

// ---------------------------------------------------------------------------
// Cached vs uncached parity. The plan cache is a host-time optimization
// only: modeled results (finish time, message count, bytes) and array
// contents must be bit-identical with the cache on or off.

namespace {

struct ParityRun {
  mx::RunResult res;
  std::vector<std::int64_t> sums;  // per physical rank: checksum of owned dst
};

ParityRun run_parity(bool cache_on, int a_kind, int b_kind, bool swap_dims,
                     std::int64_t off0, std::int64_t off1) {
  constexpr int kP = 4;
  auto c = cfg(kP);
  c.plan_cache = cache_on;
  const std::vector<std::int64_t> src_shape{9, 7};
  const std::vector<int> perm = swap_dims ? std::vector<int>{1, 0} : std::vector<int>{0, 1};
  const std::vector<std::int64_t> offsets{off0, off1};
  std::vector<std::int64_t> dst_shape(2);
  for (int dd = 0; dd < 2; ++dd) {
    dst_shape[static_cast<std::size_t>(dd)] =
        src_shape[static_cast<std::size_t>(perm[static_cast<std::size_t>(dd)])] +
        offsets[static_cast<std::size_t>(dd)] + 2;  // slack beyond the section
  }
  ParityRun out;
  out.sums.assign(kP, 0);
  mx::Machine m(c);
  out.res = m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(kP);
    ds::DistArray<std::int64_t> a(
        ctx, ds::Layout(g, src_shape, {dist_by_id(a_kind), dist_by_id((a_kind + 1) % 4)}), "a");
    ds::DistArray<std::int64_t> b(
        ctx, ds::Layout(g, dst_shape, {dist_by_id(b_kind), dist_by_id((b_kind + 3) % 4)}), "b");
    a.fill([](std::span<const std::int64_t> gi) { return gi[0] * 1000 + gi[1]; });
    b.fill_value(-7);
    ds::assign_general(ctx, b, a, perm, offsets);
    std::int64_t sum = 0;
    b.for_each_owned([&](std::span<const std::int64_t> gi, std::int64_t& v) {
      std::int64_t expected = -7;
      bool inside = true;
      std::array<std::int64_t, 2> s{};
      for (int dd = 0; dd < 2; ++dd) {
        const std::int64_t rel = gi[static_cast<std::size_t>(dd)] -
                                 offsets[static_cast<std::size_t>(dd)];
        const int sd = perm[static_cast<std::size_t>(dd)];
        inside &= rel >= 0 && rel < src_shape[static_cast<std::size_t>(sd)];
        if (inside) s[static_cast<std::size_t>(sd)] = rel;
      }
      if (inside) expected = s[0] * 1000 + s[1];
      EXPECT_EQ(v, expected) << "at (" << gi[0] << "," << gi[1] << ") cache=" << cache_on;
      sum = sum * 31 + v;
    });
    out.sums[static_cast<std::size_t>(ctx.phys_rank())] = sum;
  });
  return out;
}

}  // namespace

class RedistParity : public ::testing::TestWithParam<std::tuple<int, int, bool, int>> {};

TEST_P(RedistParity, CachedMatchesUncachedBitExactly) {
  const int a_kind = std::get<0>(GetParam());
  const int b_kind = std::get<1>(GetParam());
  const bool swap_dims = std::get<2>(GetParam());
  const bool shifted = std::get<3>(GetParam()) != 0;
  const std::int64_t off0 = shifted ? 1 : 0;
  const std::int64_t off1 = shifted ? 2 : 0;
  const ParityRun cached = run_parity(true, a_kind, b_kind, swap_dims, off0, off1);
  const ParityRun plain = run_parity(false, a_kind, b_kind, swap_dims, off0, off1);
  EXPECT_EQ(cached.res.finish_time, plain.res.finish_time);  // exact, not approximate
  EXPECT_EQ(cached.res.messages, plain.res.messages);
  EXPECT_EQ(cached.res.bytes, plain.res.bytes);
  EXPECT_EQ(cached.res.barriers, plain.res.barriers);
  EXPECT_EQ(cached.sums, plain.sums);
  EXPECT_GT(cached.res.plan_cache_hits + cached.res.plan_cache_misses, 0u);
  EXPECT_EQ(plain.res.plan_cache_hits + plain.res.plan_cache_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RedistParity,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3),
                                            ::testing::Bool(),
                                            ::testing::Values(0, 1)));

TEST(RedistParity, RepeatedAssignHitsTheCache) {
  constexpr int kP = 4;
  constexpr int kIters = 10;
  mx::Machine m(cfg(kP));
  const auto res = m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(kP);
    ds::DistArray<std::int64_t> a(ctx, ds::Layout(g, {24}, {ds::DimDist::block()}), "a");
    ds::DistArray<std::int64_t> b(ctx, ds::Layout(g, {24}, {ds::DimDist::cyclic()}), "b");
    a.fill([](std::span<const std::int64_t> gi) { return gi[0] * 3; });
    for (int k = 0; k < kIters; ++k) {
      ds::assign(ctx, b, a);
      b.for_each_owned([](std::span<const std::int64_t> gi, std::int64_t& v) {
        EXPECT_EQ(v, gi[0] * 3);
      });
    }
  });
  // One schedule built by the first arriving fiber; every later lookup
  // (kIters x kP participants in total) replays it.
  EXPECT_EQ(res.plan_cache_misses, 1u);
  EXPECT_EQ(res.plan_cache_hits, static_cast<std::uint64_t>(kIters * kP - 1));
}

TEST(RedistParity, DistinctLayoutsDoNotAliasCacheEntries) {
  // Layout pairs differing only in distribution kind, block size, or extent
  // must each build their own schedule and still land every element.
  mx::Machine m(cfg(4));
  const auto res = m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(4);
    auto check = [&](ds::DimDist sd, ds::DimDist dd, std::int64_t n) {
      ds::DistArray<std::int64_t> a(ctx, ds::Layout(g, {n}, {sd}),
                                    "a" + std::to_string(n));
      ds::DistArray<std::int64_t> b(ctx, ds::Layout(g, {n}, {dd}),
                                    "b" + std::to_string(n));
      a.fill([](std::span<const std::int64_t> gi) { return gi[0] + 11; });
      b.fill_value(-1);
      ds::assign(ctx, b, a);
      b.for_each_owned([](std::span<const std::int64_t> gi, std::int64_t& v) {
        EXPECT_EQ(v, gi[0] + 11);
      });
    };
    check(ds::DimDist::block(), ds::DimDist::cyclic(), 20);
    check(ds::DimDist::block(), ds::DimDist::block_cyclic(2), 20);
    check(ds::DimDist::block(), ds::DimDist::block_cyclic(3), 20);
    check(ds::DimDist::block(), ds::DimDist::cyclic(), 21);  // extent changes the key
  });
  EXPECT_EQ(res.plan_cache_misses, 4u);
  EXPECT_EQ(res.plan_cache_hits, 3u * 4u);
}

TEST(Redistribute, ScatterFullSizeMismatchRejected) {
  mx::Machine m(cfg(2));
  EXPECT_THROW(m.run([&](mx::Context& ctx) {
    const auto g = pg::ProcessorGroup::identity(2);
    ds::DistArray<int> a(ctx, ds::Layout(g, {8}, {ds::DimDist::block()}), "a");
    std::vector<int> full(3);  // wrong size on the root
    ds::scatter_full(ctx, a, 0, full);
  }),
               std::invalid_argument);
}
