// Tests for the DistArray container (SPMD storage, access legality,
// iteration, fill).
#include <gtest/gtest.h>

#include "dist/dist_array.hpp"
#include "machine/context.hpp"

namespace ds = fxpar::dist;
namespace mx = fxpar::machine;
namespace pg = fxpar::pgroup;

namespace {
mx::MachineConfig cfg(int p) {
  auto c = mx::MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}
}  // namespace

TEST(DistArray, MembersAllocateNonMembersDont) {
  mx::Machine m(cfg(4));
  const pg::ProcessorGroup sub({1, 2});
  m.run([&](mx::Context& ctx) {
    ds::DistArray<int> a(ctx, ds::Layout(sub, {8}, {ds::DimDist::block()}), "a");
    if (sub.contains(ctx.phys_rank())) {
      EXPECT_TRUE(a.is_member());
      EXPECT_EQ(a.local().size(), 4u);
    } else {
      EXPECT_FALSE(a.is_member());
      EXPECT_THROW(a.local(), std::logic_error);
      EXPECT_THROW(a.my_vrank(), std::logic_error);
    }
  });
}

TEST(DistArray, GlobalAccessOnOwnerOnly) {
  mx::Machine m(cfg(2));
  m.run([&](mx::Context& ctx) {
    ds::DistArray<int> a(
        ctx, ds::Layout(pg::ProcessorGroup::identity(2), {8}, {ds::DimDist::block()}), "a");
    if (ctx.phys_rank() == 0) {
      a.at(3) = 33;
      EXPECT_EQ(a.at(3), 33);
      EXPECT_THROW(a.at(4), std::logic_error);  // owned by proc 1
    } else {
      a.at(4) = 44;
      EXPECT_THROW(a.at(3), std::logic_error);
    }
  });
}

TEST(DistArray, FillAndForEachCoverExactlyOwned) {
  mx::Machine m(cfg(3));
  m.run([&](mx::Context& ctx) {
    ds::DistArray<std::int64_t> a(
        ctx, ds::Layout(pg::ProcessorGroup::identity(3), {5, 4},
                        {ds::DimDist::block(), ds::DimDist::collapsed()}),
        "grid");
    a.fill([](std::span<const std::int64_t> g) { return g[0] * 100 + g[1]; });
    std::int64_t seen = 0;
    a.for_each_owned([&](std::span<const std::int64_t> g, std::int64_t& v) {
      EXPECT_EQ(v, g[0] * 100 + g[1]);
      seen += 1;
    });
    EXPECT_EQ(seen, static_cast<std::int64_t>(a.local().size()));
  });
}

TEST(DistArray, TwoDimAccessMatchesLayout) {
  mx::Machine m(cfg(4));
  m.run([&](mx::Context& ctx) {
    ds::DistArray<double> a(
        ctx, ds::Layout(pg::ProcessorGroup::identity(4), {4, 4},
                        {ds::DimDist::block(), ds::DimDist::block()}),
        "m");
    a.fill([](std::span<const std::int64_t> g) {
      return static_cast<double>(g[0] * 10 + g[1]);
    });
    // Each proc owns a 2x2 quadrant on a 2x2 grid.
    const int v = a.my_vrank();
    const std::int64_t r0 = (v / 2) * 2, c0 = (v % 2) * 2;
    EXPECT_DOUBLE_EQ(a.at(r0 + 1, c0 + 1), static_cast<double>((r0 + 1) * 10 + c0 + 1));
  });
}

TEST(DistArray, ReplicatedEveryMemberHoldsAll) {
  mx::Machine m(cfg(3));
  m.run([&](mx::Context& ctx) {
    ds::DistArray<int> a(
        ctx, ds::Layout(pg::ProcessorGroup::identity(3), {6},
                        {ds::DimDist::collapsed()}),
        "rep");
    EXPECT_EQ(a.local().size(), 6u);
    a.fill([](std::span<const std::int64_t> g) { return static_cast<int>(g[0] * 2); });
    EXPECT_EQ(a.at(5), 10);  // every member owns every element
  });
}

TEST(DistArray, FillValueSetsAllLocal) {
  mx::Machine m(cfg(2));
  m.run([&](mx::Context& ctx) {
    ds::DistArray<float> a(
        ctx, ds::Layout(pg::ProcessorGroup::identity(2), {10}, {ds::DimDist::cyclic()}), "f");
    a.fill_value(2.5f);
    for (float x : a.local()) EXPECT_FLOAT_EQ(x, 2.5f);
  });
}

TEST(DistArray, NonMemberFillIsNoop) {
  mx::Machine m(cfg(2));
  const pg::ProcessorGroup solo({0});
  m.run([&](mx::Context& ctx) {
    ds::DistArray<int> a(ctx, ds::Layout(solo, {4}, {ds::DimDist::block()}), "solo");
    a.fill_value(7);                                  // no-op off-group
    a.fill([](std::span<const std::int64_t>) { return 9; });  // no-op off-group
    if (ctx.phys_rank() == 0) {
      for (int x : a.local()) EXPECT_EQ(x, 9);
    }
  });
}
