// Tests for src/metrics/: counter/gauge/histogram semantics, sharded
// concurrent updates, registry snapshots and both exposition formats, the
// periodic sampler, the scaling-model profiler (synthetic data with known
// coefficients), and the end-to-end RuntimeMetrics wiring through Machine
// runs on both backends — including the "metrics off" contract: no
// registry, no snapshot, identical modeled results.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "apps/ffthist.hpp"
#include "apps/stream_pipeline.hpp"
#include "core/fx.hpp"
#include "core/parallel_loop.hpp"
#include "dist/halo.hpp"
#include "dist/redistribute.hpp"
#include "json_checker.hpp"
#include "metrics/metrics.hpp"
#include "metrics/profiler.hpp"
#include "metrics/runtime_metrics.hpp"

#if defined(__SANITIZE_THREAD__)
#define FXPAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FXPAR_TSAN 1
#endif
#endif

#ifdef FXPAR_TSAN
#define FXPAR_SKIP_SIM_UNDER_TSAN() \
  GTEST_SKIP() << "simulator fibers (ucontext) are incompatible with ThreadSanitizer"
#else
#define FXPAR_SKIP_SIM_UNDER_TSAN() (void)0
#endif

namespace ap = fxpar::apps;
namespace ds = fxpar::dist;
namespace ex = fxpar::exec;
namespace me = fxpar::metrics;
namespace mx = fxpar::machine;
using fxpar::MachineConfig;

// ---------------------------------------------------------------------------
// Core metric types
// ---------------------------------------------------------------------------

TEST(Metrics, CounterSumsShardsAndAliasesOutOfRange) {
  me::Counter c(4);
  c.add(0);
  c.add(1, 10);
  c.add(3, 100);
  EXPECT_EQ(c.value(), 111u);
  // Out-of-range shard indices alias shard 0 instead of crashing: the
  // driver thread uses rank 0's shard by convention.
  c.add(7, 5);
  c.add(-1, 5);
  EXPECT_EQ(c.value(), 121u);
}

TEST(Metrics, GaugeSetAndAdd) {
  me::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(Metrics, HistogramBucketsCountSumAndQuantiles) {
  me::Histogram h(2);
  for (int i = 0; i < 99; ++i) h.observe(0, 1e-6);
  h.observe(1, 1.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 1.0 + 99e-6, 1e-9);
  // 99% of samples sit in the 1e-6 bucket: p50/p95/p99 report that
  // bucket's upper bound (within 2x of the sample), the max lands in 1.0's.
  EXPECT_GT(h.quantile(0.5), 1e-6);
  EXPECT_LE(h.quantile(0.5), 2.1e-6);
  EXPECT_LE(h.quantile(0.99), 2.1e-6);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);  // upper bound of [1, 2)
}

TEST(Metrics, HistogramDegenerateSamplesLandInBucketZero) {
  me::Histogram h(1);
  h.observe(0, 0.0);
  h.observe(0, -1.0);
  h.observe(0, std::nan(""));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.merged_buckets()[0], 3u);
  EXPECT_EQ(h.quantile(0.0), h.quantile(1.0));  // all in one bucket
}

TEST(Metrics, HistogramEmptyQuantileIsZero) {
  me::Histogram h(1);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Metrics, ConcurrentShardedUpdatesLoseNothing) {
  constexpr int kThreads = 4;
  constexpr int kOps = 50000;
  me::Registry reg(kThreads);
  me::Counter* c = reg.counter("c");
  me::Histogram* h = reg.histogram("h");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        c->add(t);
        h->observe(t, 1e-6);
      }
    });
  }
  // Snapshots race with the updates by design (relaxed live view); they
  // must be monotonic per counter and never exceed the final total.
  std::uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t now = reg.snapshot().counter("c");
    EXPECT_GE(now, prev);
    EXPECT_LE(now, static_cast<std::uint64_t>(kThreads) * kOps);
    prev = now;
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads) * kOps);
}

// ---------------------------------------------------------------------------
// Registry, snapshot, exposition
// ---------------------------------------------------------------------------

TEST(Metrics, RegistryReturnsSamePointerForSameName) {
  me::Registry reg(2);
  EXPECT_EQ(reg.counter("x"), reg.counter("x"));
  EXPECT_EQ(reg.gauge("g"), reg.gauge("g"));
  EXPECT_EQ(reg.histogram("h"), reg.histogram("h"));
  EXPECT_NE(reg.counter("x"), reg.counter("y"));
  EXPECT_EQ(reg.shards(), 2);
}

TEST(Metrics, PrometheusExpositionStructure) {
  me::Registry reg(1);
  reg.counter("fxpar_test_total")->add(0, 42);
  reg.gauge("fxpar_test_gauge")->set(1.5);
  me::Histogram* h = reg.histogram("fxpar_test_seconds");
  h->observe(0, 0.001);
  h->observe(0, 0.002);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE fxpar_test_total counter\nfxpar_test_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fxpar_test_gauge gauge\nfxpar_test_gauge 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fxpar_test_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("fxpar_test_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("fxpar_test_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("fxpar_test_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("fxpar_test_seconds_p95"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Metrics, SnapshotJsonIsValidAndNonFiniteGaugesBecomeNull) {
  me::Registry reg(1);
  reg.counter("c")->add(0, 7);
  reg.gauge("bad")->set(std::numeric_limits<double>::infinity());
  reg.histogram("h")->observe(0, 0.5);
  const std::string json = reg.snapshot().to_json();
  fxtest::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"c\":7"), std::string::npos);
  EXPECT_NE(json.find("\"bad\":null"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Metrics, SamplerHonoursPeriodAndForce) {
  me::Registry reg(1);
  me::Counter* c = reg.counter("c");
  me::Sampler fast(reg, 0.0);  // zero period: every poll samples
  c->add(0);
  EXPECT_TRUE(fast.poll());
  c->add(0);
  EXPECT_TRUE(fast.poll());
  EXPECT_EQ(fast.series().size(), 2u);
  EXPECT_EQ(fast.series()[0].counter("c"), 1u);
  EXPECT_EQ(fast.series()[1].counter("c"), 2u);

  me::Sampler slow(reg, 3600.0);
  EXPECT_TRUE(slow.poll());   // first poll always samples
  EXPECT_FALSE(slow.poll());  // an hour has not elapsed
  slow.force();
  EXPECT_EQ(slow.series().size(), 2u);

  const std::string json = me::Sampler::series_json(slow.series());
  fxtest::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  const auto series = slow.take_series();
  EXPECT_EQ(series.size(), 2u);
  EXPECT_TRUE(slow.series().empty());
}

// ---------------------------------------------------------------------------
// Profiler: fitting synthetic data with known coefficients
// ---------------------------------------------------------------------------

namespace {

void sweep(me::ProfileStore& store, const std::string& module,
           const std::vector<int>& procs, const std::vector<std::int64_t>& sizes,
           const std::function<double(std::int64_t, int)>& truth) {
  for (int p : procs) {
    for (std::int64_t n : sizes) store.record(module, p, n, truth(n, p));
  }
}

const std::vector<int> kProcs = {2, 4, 8};
const std::vector<std::int64_t> kSizes = {1 << 10, 1 << 12, 1 << 14, 1 << 16};

}  // namespace

TEST(Profiler, RecoversNOverPScaling) {
  me::ProfileStore store;
  sweep(store, "redist", kProcs, kSizes,
        [](std::int64_t n, int p) { return 1e-3 + 2e-6 * static_cast<double>(n) / p; });
  const me::Fit f = store.fit("redist");
  EXPECT_EQ(f.model, me::ScalingModel::NOverP);
  EXPECT_NEAR(f.a, 1e-3, 1e-9);
  EXPECT_NEAR(f.b, 2e-6, 1e-12);
  EXPECT_GT(f.r2, 0.9999);
  EXPECT_EQ(f.points, static_cast<int>(kProcs.size() * kSizes.size()));
  // predict() and the sched-facing cost curve agree with the truth.
  EXPECT_NEAR(f.predict(4096, 4), 1e-3 + 2e-6 * 1024.0, 1e-9);
  EXPECT_NEAR(f.time_on(4096)(4), f.predict(4096, 4), 0.0);
}

TEST(Profiler, RecoversNLogNScaling) {
  me::ProfileStore store;
  sweep(store, "fft", {4}, kSizes, [](std::int64_t n, int) {
    return 5e-4 + 1e-8 * static_cast<double>(n) * std::log2(static_cast<double>(n));
  });
  const me::Fit f = store.fit("fft");
  EXPECT_EQ(f.model, me::ScalingModel::NLogN);
  EXPECT_NEAR(f.a, 5e-4, 1e-7);
  EXPECT_NEAR(f.b, 1e-8, 1e-12);
  EXPECT_GT(f.r2, 0.999);
}

TEST(Profiler, RecoversLinearScalingAcrossProcs) {
  me::ProfileStore store;
  // Time independent of p: the n/p basis cannot fit this across procs.
  sweep(store, "seq", kProcs, kSizes,
        [](std::int64_t n, int) { return 2e-3 + 1e-6 * static_cast<double>(n); });
  const me::Fit f = store.fit("seq");
  EXPECT_EQ(f.model, me::ScalingModel::Linear);
  EXPECT_NEAR(f.a, 2e-3, 1e-8);
  EXPECT_NEAR(f.b, 1e-6, 1e-11);
}

TEST(Profiler, TooFewPointsYieldsEmptyFit) {
  me::ProfileStore store;
  store.record("lonely", 2, 1024, 0.5);
  EXPECT_EQ(store.fit("lonely").points, 0);
  EXPECT_EQ(store.fit("absent").points, 0);
  EXPECT_TRUE(store.fit_all().empty());
}

TEST(Profiler, ReportAndJsonOutputs) {
  me::ProfileStore store;
  sweep(store, "redist", kProcs, kSizes,
        [](std::int64_t n, int p) { return 1e-3 + 2e-6 * static_cast<double>(n) / p; });
  sweep(store, "fft", {4}, kSizes, [](std::int64_t n, int) {
    return 5e-4 + 1e-8 * static_cast<double>(n) * std::log2(static_cast<double>(n));
  });

  const std::string plain = store.report();
  EXPECT_NE(plain.find("redist"), std::string::npos);
  EXPECT_NE(plain.find("fft"), std::string::npos);
  EXPECT_NE(plain.find("a + b*n/p"), std::string::npos);
  EXPECT_NE(plain.find("a + b*n*log2(n)"), std::string::npos);

  // With a reference model the report grows a modeled column.
  const std::string with_ref =
      store.report([](const me::Observation& o) { return o.seconds * 1.1; });
  EXPECT_NE(with_ref.find("modeled"), std::string::npos);
  EXPECT_GT(with_ref.size(), plain.size());

  const std::string json = store.to_json();
  fxtest::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"observations\""), std::string::npos);
  EXPECT_NE(json.find("\"fits\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: RuntimeMetrics through Machine runs
// ---------------------------------------------------------------------------

namespace {

/// A program touching every instrumented layer: redistribution (messages,
/// plan cache), halo exchange, a parallel loop, a collective, a barrier.
void instrumented_program(mx::Context& ctx) {
  const auto g = fxpar::pgroup::ProcessorGroup::identity(ctx.nprocs());
  ds::DistArray<double> a(ctx, ds::Layout(g, {256}, {ds::DimDist::block()}), "a");
  ds::DistArray<double> b(ctx, ds::Layout(g, {256}, {ds::DimDist::cyclic()}), "b");
  a.fill([](std::span<const std::int64_t> gi) { return static_cast<double>(gi[0]); });
  ds::assign(ctx, b, a);
  ds::assign(ctx, b, a);  // second pass: plan-cache hit

  ds::DistArray<double> h(
      ctx,
      ds::Layout(g, {2, 64, 4},
                 {ds::DimDist::collapsed(), ds::DimDist::block(), ds::DimDist::collapsed()}),
      "h");
  h.fill_value(1.0);
  (void)ds::exchange_row_halo(ctx, h, 1);

  std::vector<double> sink(64, 0.0);
  double* out = sink.data();
  fxpar::core::parallel_for(ctx, 0, 64, [out](std::int64_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  (void)fxpar::comm::reduce(ctx, g, 0, 1.0, [](double a, double b) { return a + b; });
  ctx.barrier(ctx.group());
}

}  // namespace

TEST(RuntimeMetrics, SimRunPopulatesEveryLayer) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  mx::Machine m(MachineConfig::paragon(4));
  ASSERT_NE(m.metrics(), nullptr);
  const mx::RunResult res = m.run(instrumented_program);
  ASSERT_NE(res.metrics, nullptr);
  const me::Snapshot& s = *res.metrics;
  EXPECT_EQ(s.counter("fxpar_machine_runs_total"), 1u);
  EXPECT_GT(s.counter("fxpar_comm_messages_total"), 0u);
  EXPECT_GT(s.counter("fxpar_comm_message_bytes_total"), 0u);
  EXPECT_GT(s.counter("fxpar_sync_barriers_total"), 0u);
  EXPECT_GT(s.counter("fxpar_comm_collectives_total"), 0u);
  EXPECT_GT(s.counter("fxpar_dist_redistributions_total"), 0u);
  EXPECT_GT(s.counter("fxpar_dist_halo_exchanges_total"), 0u);
  EXPECT_GT(s.counter("fxpar_dist_plan_cache_misses_total"), 0u);
  EXPECT_GT(s.counter("fxpar_dist_plan_cache_hits_total"), 0u);
  EXPECT_EQ(s.counter("fxpar_core_parallel_loops_total"), 4u);  // one per member
  EXPECT_GT(s.gauge("fxpar_sim_modeled_busy_seconds"), 0.0);
  ASSERT_TRUE(s.histograms.count("fxpar_dist_redistribute_seconds"));
  EXPECT_EQ(s.histograms.at("fxpar_dist_redistribute_seconds").count, 8u);  // 2 x 4 members
  ASSERT_TRUE(s.histograms.count("fxpar_core_parallel_loop_seconds"));
  EXPECT_EQ(s.histograms.at("fxpar_core_parallel_loop_seconds").count, 4u);

  // The snapshot is cumulative over the machine's lifetime.
  const mx::RunResult res2 = m.run(instrumented_program);
  ASSERT_NE(res2.metrics, nullptr);
  EXPECT_EQ(res2.metrics->counter("fxpar_machine_runs_total"), 2u);
  EXPECT_GT(res2.metrics->counter("fxpar_comm_messages_total"),
            s.counter("fxpar_comm_messages_total"));
}

TEST(RuntimeMetrics, ThreadedRunPopulatesCounters) {
  auto cfg = MachineConfig::paragon(4);
  cfg.backend = ex::BackendKind::Threads;
  mx::Machine m(cfg);
  const mx::RunResult res = m.run(instrumented_program);
  ASSERT_NE(res.metrics, nullptr);
  EXPECT_EQ(res.metrics->counter("fxpar_machine_runs_total"), 1u);
  EXPECT_GT(res.metrics->counter("fxpar_comm_messages_total"), 0u);
  EXPECT_EQ(res.metrics->counter("fxpar_core_parallel_loops_total"), 4u);
  EXPECT_GT(res.metrics->gauge("fxpar_machine_last_run_host_seconds"), 0.0);
}

TEST(RuntimeMetrics, DisabledMeansNoRegistryAndIdenticalModeledTime) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  auto off = MachineConfig::paragon(4);
  off.metrics = false;
  mx::Machine moff(off);
  EXPECT_EQ(moff.metrics(), nullptr);
  const mx::RunResult roff = moff.run(instrumented_program);
  EXPECT_EQ(roff.metrics, nullptr);

  mx::Machine mon(MachineConfig::paragon(4));
  const mx::RunResult ron = mon.run(instrumented_program);
  // Metrics must never perturb the model: same program, same modeled time.
  EXPECT_DOUBLE_EQ(ron.finish_time, roff.finish_time);
  EXPECT_EQ(ron.bytes, roff.bytes);
}

TEST(Metrics, SamplerFinishFlushesFinalPartialIntervalWithoutReanchoring) {
  me::Registry reg(1);
  me::Counter* c = reg.counter("c");

  // Activity inside the final partial interval would be dropped by poll()
  // alone; finish() captures it in a terminal snapshot.
  me::Sampler s(reg, 3600.0);
  EXPECT_TRUE(s.poll());  // initial anchor sample
  c->add(0, 5);
  EXPECT_FALSE(s.poll());  // an hour has not elapsed
  s.finish();
  ASSERT_EQ(s.series().size(), 2u);
  EXPECT_EQ(s.series().back().counter("c"), 5u);

  // Unlike force(), finish() leaves the cadence anchor alone: with a short
  // period, a grid point that was already due before finish() is still due
  // after it — a sampler shared across several stream epochs keeps its
  // rhythm when one epoch drains.
  me::Sampler keep(reg, 0.02);
  EXPECT_TRUE(keep.poll());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  keep.finish();
  EXPECT_TRUE(keep.poll()) << "finish() must not re-anchor the grid";

  me::Sampler move(reg, 0.02);
  EXPECT_TRUE(move.poll());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  move.force();
  EXPECT_FALSE(move.poll()) << "force() re-anchors the grid at now";
}

// ---------------------------------------------------------------------------
// Series coverage: a sampled stream run must account for every data set
// ---------------------------------------------------------------------------

TEST(RuntimeMetrics, SampledStreamSeriesCoversTheWholeStream) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  // A stream far shorter than the sampling period: before the terminal
  // flush, the series ended at the initial snapshot and reported zero
  // completed sets for the whole run.
  ap::FftHistConfig cfg;
  cfg.n = 16;
  cfg.bins = 8;
  cfg.num_sets = 4;
  const auto stages = ap::ffthist_stages(cfg);
  const auto stats = ap::run_stream_pipeline<ap::Complex>(
      MachineConfig::paragon(4), stages, {{0, 2, 4, 1}}, cfg.num_sets,
      /*metrics_sample_period_s=*/3600.0);
  ASSERT_GE(stats.metrics_series.size(), 2u);
  EXPECT_LT(stats.metrics_series.front().counter("fxpar_apps_pipeline_sets_total"),
            static_cast<std::uint64_t>(cfg.num_sets));
  EXPECT_EQ(stats.metrics_series.back().counter("fxpar_apps_pipeline_sets_total"),
            static_cast<std::uint64_t>(cfg.num_sets));
}
