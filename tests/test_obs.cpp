// Tests for the live observability plane (src/obs/): flight-recorder ring
// semantics and Chrome export, the embedded HTTP endpoint (routing plus
// serving /metrics, /healthz, /trace and /diagnostics during a live
// threaded run), structured diagnostic bundles on deadlock and abort for
// both backends, the stall watchdog, the grid-aligned metrics sampler, and
// the utilization-report lines for the collective-plan cache and payload
// pool.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/stream_pipeline.hpp"
#include "json_checker.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "machine/report.hpp"
#include "obs/diagnostics.hpp"
#include "obs/endpoint.hpp"
#include "obs/flight_recorder.hpp"
#include "runtime/simulator.hpp"

#if defined(__SANITIZE_THREAD__)
#define FXPAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FXPAR_TSAN 1
#endif
#endif

#ifdef FXPAR_TSAN
#define FXPAR_SKIP_SIM_UNDER_TSAN() \
  GTEST_SKIP() << "simulator fibers (ucontext) are incompatible with ThreadSanitizer"
#else
#define FXPAR_SKIP_SIM_UNDER_TSAN() (void)0
#endif

namespace mx = fxpar::machine;
namespace ex = fxpar::exec;
namespace obs = fxpar::obs;
using fxpar::MachineConfig;

namespace {

MachineConfig backend_config(ex::BackendKind kind, int p) {
  auto c = MachineConfig::ideal(p);
  c.backend = kind;
  c.flight_recorder = true;
  c.flight_events = 64;
  return c;
}

/// Blocking one-shot HTTP GET against 127.0.0.1:`port`; returns the full
/// response (status line + headers + body), or "" on connect failure.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

/// Body of an HTTP response ("" when there is no header/body separator).
std::string http_body(const std::string& resp) {
  const auto pos = resp.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : resp.substr(pos + 4);
}

}  // namespace

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorder, RingWrapKeepsNewestEvents) {
  obs::FlightRecorder fr(/*procs=*/1, /*events_per_proc=*/16, /*window_s=*/1e9);
  for (int i = 0; i < 100; ++i) {
    fr.record(0, obs::FlightKind::Mark, static_cast<double>(i) * 1e-3, "e",
              static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(fr.total_recorded(), 100u);
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 16u);
  // A full ring keeps exactly the newest events, oldest-surviving first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 84u + i);
  }
  const std::string chrome = fr.chrome_json();
  EXPECT_TRUE(fxtest::JsonChecker(chrome).valid()) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
}

TEST(FlightRecorder, WindowDropsStaleEvents) {
  obs::FlightRecorder fr(1, 16, /*window_s=*/1.0);
  fr.record(0, obs::FlightKind::Mark, 0.0, "old");
  fr.record(0, obs::FlightKind::Mark, 0.5, "stale");
  fr.record(0, obs::FlightKind::Mark, 2.0, "fresh");
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "fresh");
}

TEST(FlightRecorder, EscapesHostileSpanNames) {
  obs::FlightRecorder fr(1, 16, 1e9);
  fr.record(0, obs::FlightKind::Span, 1.0, "a\"b\\c\nd");
  EXPECT_TRUE(fxtest::JsonChecker(fr.chrome_json()).valid()) << fr.chrome_json();
  EXPECT_TRUE(
      fxtest::JsonChecker(obs::FlightRecorder::events_json(fr.snapshot(), 8)).valid());
}

// ---------------------------------------------------------------------------
// HTTP endpoint

TEST(Endpoint, ServesRegisteredRoutes) {
  obs::Endpoint ep;
  ep.handle("/ping", "text/plain", [] { return std::string("pong"); });
  ASSERT_TRUE(ep.start(0));  // ephemeral port
  ASSERT_GT(ep.port(), 0);
  const std::string ok = http_get(ep.port(), "/ping");
  EXPECT_NE(ok.find("200"), std::string::npos) << ok;
  EXPECT_EQ(http_body(ok), "pong");
  const std::string missing = http_get(ep.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
  ep.stop();
}

TEST(Endpoint, AnswersDuringLiveThreadedRun) {
  auto cfg = backend_config(ex::BackendKind::Threads, 3);
  cfg.obs_port = 0;
  mx::Machine m(cfg);
  ASSERT_GT(m.obs_port(), 0);
  const int port = m.obs_port();

  std::atomic<bool> release{false};
  std::thread runner([&] {
    m.run([&release](mx::Context& ctx) {
      auto sp = ctx.span("probe-window", "test");
      if (ctx.vrank() == 0) {
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        for (int peer = 1; peer < ctx.group().size(); ++peer) {
          ctx.send(peer, /*tag=*/9, fxpar::machine::Payload(1));
        }
      } else {
        (void)ctx.recv(0, 9);
      }
      ctx.barrier();
    });
  });

  // Wait until /healthz reports the run in flight, then probe every route
  // while the workers are live.
  std::string health;
  for (int i = 0; i < 2000; ++i) {
    health = http_body(http_get(port, "/healthz"));
    if (health.find("\"run_state\":\"running\"") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_NE(health.find("\"run_state\":\"running\""), std::string::npos) << health;
  EXPECT_TRUE(fxtest::JsonChecker(health).valid()) << health;
  EXPECT_NE(health.find("\"procs\":3"), std::string::npos);
  EXPECT_NE(health.find("\"workers\""), std::string::npos);

  const std::string metrics = http_body(http_get(port, "/metrics"));
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos) << metrics;

  const std::string trace = http_body(http_get(port, "/trace"));
  EXPECT_TRUE(fxtest::JsonChecker(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);

  const std::string diag = http_body(http_get(port, "/diagnostics"));
  EXPECT_TRUE(fxtest::JsonChecker(diag).valid()) << diag;
  EXPECT_NE(diag.find("\"reason\":\"on-demand\""), std::string::npos) << diag;

  release.store(true, std::memory_order_release);
  runner.join();

  // After the run the flight recorder holds the span marks and messages.
  const std::string done = http_body(http_get(port, "/healthz"));
  EXPECT_NE(done.find("\"run_state\":\"done\""), std::string::npos) << done;
  ASSERT_NE(m.flight(), nullptr);
  EXPECT_GT(m.flight()->total_recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Diagnostic bundles

namespace {

void expect_deadlock_bundle(ex::BackendKind kind) {
  mx::Machine m(backend_config(kind, 2));
  EXPECT_THROW(m.run([](mx::Context& ctx) {
    // Mutual receive with no sender: a certain deadlock on both backends.
    (void)ctx.recv(1 - ctx.vrank(), /*tag=*/5);
  }),
               fxpar::runtime::DeadlockError);
  const std::string bundle = m.last_diagnostic();
  ASSERT_FALSE(bundle.empty());
  EXPECT_TRUE(fxtest::JsonChecker(bundle).valid()) << bundle;
  EXPECT_NE(bundle.find("\"reason\":\"deadlock\""), std::string::npos) << bundle;
  // Both workers were parked in a receive when the failure froze the state.
  EXPECT_NE(bundle.find("recv"), std::string::npos) << bundle;
  EXPECT_NE(bundle.find("\"workers\""), std::string::npos);
  EXPECT_NE(bundle.find("\"flight\""), std::string::npos);
}

void expect_abort_bundle(ex::BackendKind kind, int failing_rank = 0) {
  mx::Machine m(backend_config(kind, 3));
  EXPECT_THROW(m.run([kind, failing_rank](mx::Context& ctx) {
    if (ctx.vrank() == failing_rank) {
      if (kind != ex::BackendKind::Sim) {
        // Give the peers time to park at the barrier so the frozen
        // introspection shows their block reason.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      throw std::runtime_error("boom in loop body");
    }
    ctx.barrier();
  }),
               std::runtime_error);
  const std::string bundle = m.last_diagnostic();
  ASSERT_FALSE(bundle.empty());
  EXPECT_TRUE(fxtest::JsonChecker(bundle).valid()) << bundle;
  EXPECT_NE(bundle.find("\"reason\":\"abort\""), std::string::npos) << bundle;
  EXPECT_NE(bundle.find("boom in loop body"), std::string::npos) << bundle;
  // The peers were blocked at the machine barrier when rank 0 threw.
  EXPECT_NE(bundle.find("barrier"), std::string::npos) << bundle;
}

}  // namespace

TEST(Diagnostics, DeadlockBundleSim) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  expect_deadlock_bundle(ex::BackendKind::Sim);
}

TEST(Diagnostics, DeadlockBundleThreads) {
  expect_deadlock_bundle(ex::BackendKind::Threads);
}

TEST(Diagnostics, AbortBundleSim) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  expect_abort_bundle(ex::BackendKind::Sim);
}

TEST(Diagnostics, AbortBundleThreads) {
  expect_abort_bundle(ex::BackendKind::Threads);
}

TEST(Diagnostics, DeadlockBundleProc) {
#ifdef FXPAR_TSAN
  GTEST_SKIP() << "fork-per-rank backend is incompatible with ThreadSanitizer";
#endif
  expect_deadlock_bundle(ex::BackendKind::Proc);
}

TEST(Diagnostics, AbortBundleProcChildRank) {
#ifdef FXPAR_TSAN
  GTEST_SKIP() << "fork-per-rank backend is incompatible with ThreadSanitizer";
#endif
  // Rank 1 is a forked child on the process backend: its exception must
  // cross the process boundary (shared-memory error block), surface as the
  // parent's std::runtime_error, and still yield a schema-valid bundle
  // with the peers' frozen block reasons.
  expect_abort_bundle(ex::BackendKind::Proc, /*failing_rank=*/1);
}

TEST(Diagnostics, JsonSurvivesHostileErrorText) {
  obs::DiagnosticInfo d;
  d.reason = "abort";
  d.error = "quote \" backslash \\ newline \n control \x01 end";
  d.backend = "threads";
  d.procs = 1;
  obs::WorkerState ws;
  ws.rank = 0;
  ws.block_reason = "recv \"tag\"";
  d.intro.workers.push_back(ws);
  const std::string j = obs::diagnostic_json(d);
  EXPECT_TRUE(fxtest::JsonChecker(j).valid()) << j;
}

TEST(Diagnostics, StallWatchdogEmitsBundle) {
  auto cfg = backend_config(ex::BackendKind::Threads, 2);
  cfg.stall_watchdog_s = 0.15;
  mx::Machine m(cfg);
  m.run([](mx::Context& ctx) {
    if (ctx.vrank() == 0) {
      // No runtime service call for well past the watchdog limit: pure
      // (here: sleeping) user code is exactly what the watchdog flags.
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
    }
    ctx.barrier();
  });
  const std::string bundle = m.last_diagnostic();
  ASSERT_FALSE(bundle.empty());
  EXPECT_TRUE(fxtest::JsonChecker(bundle).valid()) << bundle;
  EXPECT_NE(bundle.find("\"reason\":\"stall\""), std::string::npos) << bundle;
}

// ---------------------------------------------------------------------------
// Metrics sampler cadence (threads backend)

TEST(Sampler, SeriesMonotoneAndGapFreeOnThreads) {
  namespace ap = fxpar::apps;
  namespace ds = fxpar::dist;
  auto cfg = MachineConfig::ideal(2);
  cfg.backend = ex::BackendKind::Threads;

  std::vector<ap::PipelineStage<double>> stages(1);
  auto block = [](const fxpar::ProcessorGroup& g) {
    return ds::Layout(g, {64}, {ds::DimDist::block()});
  };
  stages[0].name = "work";
  stages[0].in_layout = stages[0].out_layout = block;
  stages[0].run = [](mx::Context& ctx, ds::DistArray<double>&, ds::DistArray<double>& o,
                     int k) {
    o.fill([k](std::span<const std::int64_t> gi) {
      return static_cast<double>(gi[0] + k);
    });
    // Real host time so the sampler's steady-clock grid advances.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ctx.barrier();
  };
  const auto stats = ap::run_stream_pipeline<double>(cfg, stages, {{0, 0, 2, 1}}, 24,
                                                     /*metrics_sample_period_s=*/1e-3);
  ASSERT_GE(stats.metrics_series.size(), 3u);
  for (std::size_t i = 1; i < stats.metrics_series.size(); ++i) {
    const auto& prev = stats.metrics_series[i - 1];
    const auto& cur = stats.metrics_series[i];
    // Monotone time axis…
    EXPECT_GE(cur.t, prev.t) << "sample " << i;
    // …and gap-free counters: every snapshot of a monotone counter must be
    // >= its predecessor (a dropped or reordered sample would regress).
    EXPECT_GE(cur.counter("fxpar_comm_messages_total"),
              prev.counter("fxpar_comm_messages_total"))
        << "sample " << i;
    EXPECT_GE(cur.counter("fxpar_sync_barriers_total"),
              prev.counter("fxpar_sync_barriers_total"))
        << "sample " << i;
  }
  EXPECT_TRUE(fxtest::JsonChecker(stats.metrics_series_json()).valid());
}

// ---------------------------------------------------------------------------
// Utilization report satellites

TEST(Report, ShowsCollectivePlanCacheAndPoolSpills) {
  mx::RunResult res;
  res.finish_time = 1.0;
  res.clocks.resize(2);
  res.clocks[0].busy = 0.5;
  res.clocks[1].busy = 0.5;
  res.collective_plan_hits = 3;
  res.collective_plan_misses = 1;
  res.pool_spills = 2;
  const std::string report = mx::utilization_report(res);
  EXPECT_NE(report.find("collective plan cache: 3 hits, 1 misses"), std::string::npos)
      << report;
  EXPECT_NE(report.find("payload pool: 2 cross-shard spills"), std::string::npos)
      << report;

  // The lines stay out of reports for runs without those events.
  const std::string quiet = mx::utilization_report(mx::RunResult{});
  EXPECT_EQ(quiet.find("collective plan cache"), std::string::npos);
  EXPECT_EQ(quiet.find("payload pool"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Config validation

TEST(Config, ValidateRejectsBadObservabilityKnobs) {
  auto bad = [](auto&& mutate) {
    auto c = MachineConfig::ideal(2);
    mutate(c);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };
  bad([](MachineConfig& c) { c.obs_port = 65536; });
  bad([](MachineConfig& c) { c.flight_events = 4; });
  bad([](MachineConfig& c) { c.flight_window_s = 0.0; });
  bad([](MachineConfig& c) { c.stall_watchdog_s = -1.0; });
}
