// Tests for the host-topology probe and worker pinning (exec/topology.hpp):
// cpulist parsing, pin-plan construction on synthetic topologies, the
// FX_NO_NUMA flat fallback, the first-touch allocator, the machine's
// sharded payload pool, and a threaded-backend pinning smoke run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "exec/topology.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"

namespace ex = fxpar::exec;
namespace mx = fxpar::machine;

TEST(Topology, ParseCpulist) {
  EXPECT_EQ(ex::parse_cpulist("0-3,8,10-11"), (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(ex::parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(ex::parse_cpulist("0-1\n"), (std::vector<int>{0, 1}));
  EXPECT_TRUE(ex::parse_cpulist("").empty());
}

TEST(Topology, PolicyNamesRoundTrip) {
  for (ex::PinPolicy p : {ex::PinPolicy::None, ex::PinPolicy::Compact, ex::PinPolicy::Scatter,
                          ex::PinPolicy::Numa}) {
    ex::PinPolicy back = ex::PinPolicy::None;
    ASSERT_TRUE(ex::parse_pin_policy(ex::pin_policy_name(p), back));
    EXPECT_EQ(back, p);
  }
  ex::PinPolicy out = ex::PinPolicy::Compact;
  EXPECT_FALSE(ex::parse_pin_policy("bogus", out));
  EXPECT_EQ(out, ex::PinPolicy::Compact);  // untouched on failure
}

TEST(Topology, SyntheticShape) {
  const ex::HostTopology t = ex::HostTopology::synthetic(2, 4);
  EXPECT_EQ(t.num_nodes(), 2);
  EXPECT_EQ(t.num_cpus(), 8);
  EXPECT_FALSE(t.flat());
  EXPECT_EQ(t.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.nodes[1].cpus, (std::vector<int>{4, 5, 6, 7}));
}

TEST(Topology, PinPlanNoneIsUnpinned) {
  const auto plan = ex::make_pin_plan(ex::HostTopology::synthetic(2, 4), ex::PinPolicy::None, 6);
  ASSERT_EQ(plan.size(), 6u);
  for (const auto& p : plan) {
    EXPECT_EQ(p.cpu, -1);
    EXPECT_EQ(p.node, -1);
  }
}

TEST(Topology, PinPlanCompactFillsNodesInOrder) {
  const auto plan =
      ex::make_pin_plan(ex::HostTopology::synthetic(2, 4), ex::PinPolicy::Compact, 6);
  ASSERT_EQ(plan.size(), 6u);
  // Node 0's CPUs first, then node 1.
  const int want_cpu[] = {0, 1, 2, 3, 4, 5};
  const int want_node[] = {0, 0, 0, 0, 1, 1};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(plan[static_cast<std::size_t>(i)].cpu, want_cpu[i]) << i;
    EXPECT_EQ(plan[static_cast<std::size_t>(i)].node, want_node[i]) << i;
  }
}

TEST(Topology, PinPlanScatterRoundRobinsAcrossNodes) {
  const auto plan =
      ex::make_pin_plan(ex::HostTopology::synthetic(2, 4), ex::PinPolicy::Scatter, 4);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].node, 0);
  EXPECT_EQ(plan[1].node, 1);
  EXPECT_EQ(plan[2].node, 0);
  EXPECT_EQ(plan[3].node, 1);
}

TEST(Topology, PinPlanNumaPlacesContiguousBlocks) {
  const auto plan = ex::make_pin_plan(ex::HostTopology::synthetic(2, 4), ex::PinPolicy::Numa, 8);
  ASSERT_EQ(plan.size(), 8u);
  // Workers 0..3 on node 0, 4..7 on node 1 (block placement matching
  // block-distributed first-touch data).
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(plan[static_cast<std::size_t>(i)].node, i < 4 ? 0 : 1) << i;
  }
}

TEST(Topology, PinPlanWrapsWhenWorkersExceedCpus) {
  const auto plan =
      ex::make_pin_plan(ex::HostTopology::synthetic(2, 2), ex::PinPolicy::Compact, 10);
  ASSERT_EQ(plan.size(), 10u);
  for (const auto& p : plan) {
    EXPECT_GE(p.cpu, 0);
    EXPECT_LT(p.cpu, 4);
    EXPECT_GE(p.node, 0);
  }
  // Wrap is cyclic over the compact order.
  EXPECT_EQ(plan[4].cpu, plan[0].cpu);
  EXPECT_EQ(plan[9].cpu, plan[5].cpu);
}

TEST(Topology, DetectHonorsNoNumaEscapeHatch) {
  ::setenv("FX_NO_NUMA", "1", 1);
  const ex::HostTopology t = ex::HostTopology::detect();
  ::unsetenv("FX_NO_NUMA");
  EXPECT_TRUE(t.flat());
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_GE(t.num_cpus(), 1);
}

TEST(Topology, DetectAlwaysYieldsUsableShape) {
  const ex::HostTopology t = ex::HostTopology::detect();
  ASSERT_GE(t.num_nodes(), 1);
  ASSERT_GE(t.num_cpus(), 1);
  for (const auto& nd : t.nodes) EXPECT_FALSE(nd.cpus.empty());
  // Whatever the host looks like, every policy must produce a full plan.
  for (ex::PinPolicy p : {ex::PinPolicy::Compact, ex::PinPolicy::Scatter, ex::PinPolicy::Numa}) {
    const auto plan = ex::make_pin_plan(t, p, 16);
    ASSERT_EQ(plan.size(), 16u);
    for (const auto& w : plan) EXPECT_GE(w.cpu, 0);
  }
}

TEST(Topology, FirstTouchAllocatorServesSmallAndLargeBlocks) {
  // Small block: operator-new path.
  std::vector<double, ex::FirstTouchAllocator<double>> small(32, 1.5);
  EXPECT_DOUBLE_EQ(std::accumulate(small.begin(), small.end(), 0.0), 48.0);
  // Large block: mmap path (>= kFirstTouchMmapBytes).
  const std::size_t n = (2 * ex::detail::kFirstTouchMmapBytes) / sizeof(double);
  std::vector<double, ex::FirstTouchAllocator<double>> big(n);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<double>(i % 7);
  double sum = 0;
  for (double v : big) sum += v;
  EXPECT_GT(sum, 0.0);
  big.clear();
  big.shrink_to_fit();  // exercises deallocate on the mmap path
}

TEST(Topology, PoolSpillCounterCountsShardOverflow) {
  auto c = mx::MachineConfig::ideal(1);
  c.backend = ex::BackendKind::Threads;
  c.stack_bytes = 256 * 1024;
  mx::Machine m(c);
  const auto res = m.run([&](mx::Context& ctx) {
    // Hold more payloads than one shard's capacity, then release them all:
    // the first 16 fill this worker's shard, the rest spill to the shared
    // list (and are counted).
    std::vector<mx::Payload> held;
    for (int i = 0; i < 24; ++i) held.push_back(ctx.machine().pool_acquire(256));
    for (auto& p : held) ctx.machine().pool_release(std::move(p));
  });
  EXPECT_GE(m.pool_spill_count(), 8u);
  EXPECT_EQ(res.pool_spills, m.pool_spill_count());
}

TEST(Topology, ThreadedBackendPinningSmoke) {
  auto c = mx::MachineConfig::ideal(2);
  c.backend = ex::BackendKind::Threads;
  c.pinning = ex::PinPolicy::Compact;
  c.stack_bytes = 256 * 1024;
  mx::Machine m(c);
  int sum = 0;
  const auto res = m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) sum = 41 + 1;  // just prove the body ran pinned or not
  });
  EXPECT_EQ(sum, 42);
  EXPECT_EQ(res.pinning, "compact");
  // Affinity can be refused (cgroup cpusets, restricted sandboxes); when it
  // sticks, every worker reports its node.
  if (!res.numa_nodes.empty()) {
    ASSERT_EQ(res.numa_nodes.size(), 2u);
    for (int nd : res.numa_nodes) EXPECT_GE(nd, 0);
  }
}

TEST(Topology, PinningKeepsResultsIdentical) {
  auto run_with = [](ex::PinPolicy pol) {
    auto c = mx::MachineConfig::ideal(4);
    c.backend = ex::BackendKind::Threads;
    c.pinning = pol;
    c.stack_bytes = 256 * 1024;
    mx::Machine m(c);
    std::vector<double> out(4, 0.0);
    m.run([&](mx::Context& ctx) {
      const int r = ctx.phys_rank();
      double acc = 0;
      for (int i = 0; i < 1000; ++i) acc += 1.0 / (1 + ((i * 31 + r) % 97));
      out[static_cast<std::size_t>(r)] = acc;
    });
    return out;
  };
  const auto none = run_with(ex::PinPolicy::None);
  for (ex::PinPolicy pol : {ex::PinPolicy::Compact, ex::PinPolicy::Scatter, ex::PinPolicy::Numa}) {
    EXPECT_EQ(run_with(pol), none);
  }
}
