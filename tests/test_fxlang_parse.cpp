// Tests for the fxlang lexer and parser.
#include <gtest/gtest.h>

#include "lang/lexer.hpp"
#include "lang/parser.hpp"

namespace lg = fxpar::lang;

TEST(Lexer, TokenizesDirectives) {
  const auto toks = lg::lex("TASK_PARTITION p :: g1(2), g2(NPROCS() - 2)\n");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, lg::Tok::Ident);
  EXPECT_EQ(toks[0].text, "TASK_PARTITION");
  EXPECT_EQ(toks[2].kind, lg::Tok::ColonColon);
}

TEST(Lexer, CaseInsensitiveIdentifiers) {
  const auto toks = lg::lex("Begin task_region myPart\n");
  EXPECT_EQ(toks[0].text, "BEGIN");
  EXPECT_EQ(toks[1].text, "TASK_REGION");
  EXPECT_EQ(toks[2].text, "MYPART");
}

TEST(Lexer, NumbersAndOperators) {
  const auto toks = lg::lex("x = 2.5 * (3 - 1) / 4\n");
  EXPECT_EQ(toks[1].kind, lg::Tok::Assign);
  EXPECT_DOUBLE_EQ(toks[2].number, 2.5);
  EXPECT_EQ(toks[3].kind, lg::Tok::Star);
  EXPECT_EQ(toks[4].kind, lg::Tok::LParen);
}

TEST(Lexer, CommentsIgnored) {
  const auto toks = lg::lex("x = 1 ! the answer\ny = 2\n");
  int idents = 0;
  for (const auto& t : toks) {
    if (t.kind == lg::Tok::Ident) ++idents;
  }
  EXPECT_EQ(idents, 2);
}

TEST(Lexer, ComparisonOperators) {
  const auto toks = lg::lex("a == b <> c <= d >= e < f > g\n");
  std::vector<lg::Tok> ops;
  for (const auto& t : toks) {
    if (t.kind != lg::Tok::Ident && t.kind != lg::Tok::Newline && t.kind != lg::Tok::End) {
      ops.push_back(t.kind);
    }
  }
  EXPECT_EQ(ops, (std::vector<lg::Tok>{lg::Tok::Eq, lg::Tok::Ne, lg::Tok::Le, lg::Tok::Ge,
                                       lg::Tok::Lt, lg::Tok::Gt}));
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_THROW(lg::lex("x = @\n"), std::invalid_argument);
}

TEST(Parser, ParsesFullProgramStructure) {
  const char* src = R"(
PROGRAM demo
  INTEGER i
  ARRAY a(16), b(16)
  TASK_PARTITION part :: g1(2), g2(NPROCS() - 2)
  SUBGROUP(g1) :: a
  SUBGROUP(g2) :: b
  DISTRIBUTE a(BLOCK), b(CYCLIC)
  BEGIN TASK_REGION part
    DO i = 1, 3
      ON SUBGROUP g1
        a = i * 2
      END ON
      b = a
    END DO
  END TASK_REGION
  PRINT i
END
)";
  const auto prog = lg::parse_program(src);
  EXPECT_EQ(prog.name, "DEMO");
  ASSERT_EQ(prog.body.size(), 8u);
  EXPECT_EQ(prog.body[0]->kind, lg::StmtKind::DeclScalar);
  EXPECT_EQ(prog.body[1]->kind, lg::StmtKind::DeclArray);
  EXPECT_EQ(prog.body[2]->kind, lg::StmtKind::DeclPartition);
  EXPECT_EQ(prog.body[2]->subgroups.size(), 2u);
  EXPECT_EQ(prog.body[5]->kind, lg::StmtKind::Distribute);
  const auto& region = *prog.body[6];
  EXPECT_EQ(region.kind, lg::StmtKind::TaskRegion);
  EXPECT_EQ(region.partition_name, "PART");
  ASSERT_EQ(region.body.size(), 1u);
  const auto& loop = *region.body[0];
  EXPECT_EQ(loop.kind, lg::StmtKind::Do);
  ASSERT_EQ(loop.body.size(), 2u);
  EXPECT_EQ(loop.body[0]->kind, lg::StmtKind::OnSubgroup);
  EXPECT_EQ(loop.body[1]->kind, lg::StmtKind::Assign);
}

TEST(Parser, IfElseBlocks) {
  const auto prog = lg::parse_program("INTEGER x\nIF x > 2 THEN\nx = 1\nELSE\nx = 0\nEND IF\n");
  ASSERT_EQ(prog.body.size(), 2u);
  const auto& iff = *prog.body[1];
  EXPECT_EQ(iff.kind, lg::StmtKind::If);
  EXPECT_EQ(iff.body.size(), 1u);
  EXPECT_EQ(iff.else_body.size(), 1u);
}

TEST(Parser, DistributeWithBlockCyclic) {
  const auto prog = lg::parse_program("ARRAY a(10, 10)\nDISTRIBUTE a(CYCLIC(3), *)\n");
  const auto& d = prog.body[1]->dists[0];
  EXPECT_EQ(d.dims[0], "CYCLIC");
  EXPECT_EQ(d.cyclic_blocks[0], 3);
  EXPECT_EQ(d.dims[1], "*");
}

TEST(Parser, OperatorPrecedence) {
  const auto prog = lg::parse_program("INTEGER x\nx = 1 + 2 * 3\n");
  const auto& rhs = *prog.body[1]->rhs;
  ASSERT_EQ(rhs.kind, lg::ExprKind::Binary);
  EXPECT_EQ(rhs.op, lg::BinOp::Add);
  EXPECT_EQ(rhs.args[1]->op, lg::BinOp::Mul);
}

TEST(Parser, SyntaxErrorsCarryLineNumbers) {
  try {
    lg::parse_program("INTEGER x\nDO x = 1\nEND DO\n");  // missing ', to'
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fxlang:2"), std::string::npos);
  }
}

TEST(Parser, UnterminatedBlockRejected) {
  EXPECT_THROW(lg::parse_program("DO i = 1, 3\nPRINT i\n"), std::invalid_argument);
  EXPECT_THROW(lg::parse_program("BEGIN TASK_REGION p\n"), std::invalid_argument);
}

TEST(Parser, BareStatementListWithoutProgram) {
  const auto prog = lg::parse_program("INTEGER x\nx = 3\nPRINT x\n");
  EXPECT_TRUE(prog.name.empty());
  EXPECT_EQ(prog.body.size(), 3u);
}
