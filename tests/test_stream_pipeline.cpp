// Tests of the generic stream-pipeline executor itself (module/instance
// bookkeeping, statistics, idle processors) using a synthetic two-stage
// program with fully controlled costs.
#include <gtest/gtest.h>

#include "apps/stream_pipeline.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;
namespace ds = fxpar::dist;

namespace {

MachineConfig cfg(int p) {
  auto c = MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

/// Two stages: "gen" writes k into every element and charges `t0`; "check"
/// verifies the handoff delivered data set k and charges `t1`.
std::vector<ap::PipelineStage<double>> synth_stages(double t0, double t1,
                                                    std::vector<int>* seen = nullptr) {
  std::vector<ap::PipelineStage<double>> st(2);
  auto layout = [](const pgroup::ProcessorGroup& g) {
    return ds::Layout(g, {32}, {ds::DimDist::block()});
  };
  st[0].name = "gen";
  st[0].in_layout = layout;
  st[0].out_layout = layout;
  st[0].run = [t0](machine::Context& ctx, ds::DistArray<double>&, ds::DistArray<double>& out,
                   int k) {
    out.fill_value(static_cast<double>(k));
    ctx.charge(t0);
  };
  st[1].name = "check";
  st[1].in_layout = layout;
  st[1].out_layout = layout;
  st[1].run = [t1, seen](machine::Context& ctx, ds::DistArray<double>& in,
                         ds::DistArray<double>& out, int k) {
    for (double v : in.local()) EXPECT_DOUBLE_EQ(v, static_cast<double>(k));
    out.fill_value(0.0);
    ctx.charge(t1);
    if (seen && in.group().virtual_of(ctx.phys_rank()) == 0) seen->push_back(k);
  };
  return st;
}

}  // namespace

TEST(StreamPipeline, DeliversEveryDataSetInOrder) {
  std::vector<int> seen;
  const auto st = synth_stages(1.0, 1.0, &seen);
  ap::run_stream_pipeline<double>(cfg(4), st, {{0, 0, 2, 1}, {1, 1, 2, 1}}, 7);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(StreamPipeline, ReplicatedModulesAlternateDataSets) {
  // Each of the two instances of the "check" module has its own leader, so
  // every set is recorded exactly once, and consecutive sets alternate
  // between the two instance groups (set k goes to instance k % 2).
  std::vector<std::pair<int, int>> seen;  // (set, leader phys rank)
  std::vector<ap::PipelineStage<double>> st = synth_stages(1.0, 1.0);
  st[1].run = [&seen](machine::Context& ctx, ds::DistArray<double>& in,
                      ds::DistArray<double>&, int k) {
    ctx.charge(1.0);
    if (in.group().virtual_of(ctx.phys_rank()) == 0) seen.push_back({k, ctx.phys_rank()});
  };
  ap::run_stream_pipeline<double>(cfg(6), st, {{0, 0, 2, 1}, {1, 1, 2, 2}}, 8);
  ASSERT_EQ(seen.size(), 8u);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(seen[static_cast<std::size_t>(k)].first, k);
    EXPECT_EQ(seen[static_cast<std::size_t>(k)].second,
              seen[static_cast<std::size_t>(k % 2)].second);  // same instance every 2
  }
  EXPECT_NE(seen[0].second, seen[1].second);  // two distinct instances
}

TEST(StreamPipeline, MakespanShowsOverlap) {
  const auto st = synth_stages(5.0, 5.0);
  const int sets = 10;
  const auto pipe =
      ap::run_stream_pipeline<double>(cfg(4), st, {{0, 0, 2, 1}, {1, 1, 2, 1}}, sets);
  // Pipelined: ~ (sets + 1) * 5; serialized would be ~ sets * 10.
  EXPECT_LT(pipe.makespan, 0.75 * sets * 10.0);
  EXPECT_GE(pipe.makespan, sets * 5.0);
}

TEST(StreamPipeline, StatsLatencyCoversBothStages) {
  const auto st = synth_stages(3.0, 4.0);
  const auto s =
      ap::run_stream_pipeline<double>(cfg(4), st, {{0, 0, 2, 1}, {1, 1, 2, 1}}, 6);
  EXPECT_GE(s.avg_latency(), 7.0);       // both stages on the critical path
  EXPECT_LE(s.avg_latency(), 7.0 * 2.5); // bounded handoff/queueing overhead
  EXPECT_GT(s.steady_throughput(), 1.0 / 6.0);
  EXPECT_EQ(s.num_sets, 6);
}

TEST(StreamPipeline, BottleneckStageSetsThroughput) {
  const auto st = synth_stages(1.0, 9.0);
  const auto s =
      ap::run_stream_pipeline<double>(cfg(4), st, {{0, 0, 2, 1}, {1, 1, 2, 1}}, 10);
  // Rate ~ 1 / max stage time.
  EXPECT_NEAR(s.steady_throughput(), 1.0 / 9.0, 0.02);
}

TEST(StreamPipeline, IdleProcessorsStayIdle) {
  const auto st = synth_stages(2.0, 2.0);
  ap::StreamStats s =
      ap::run_stream_pipeline<double>(cfg(8), st, {{0, 0, 2, 1}, {1, 1, 2, 1}}, 4);
  // Processors 4..7 belong to the "idle" subgroup: they only execute the
  // replicated loop control (a few nanoseconds of modeled time), never the
  // stage work (4 sets x 2.0 s each elsewhere).
  for (int r = 4; r < 8; ++r) {
    EXPECT_LT(s.machine_result.clocks[static_cast<std::size_t>(r)].busy, 1e-4)
        << "proc " << r;
  }
}

TEST(StreamPipeline, RejectsIllFormedMappings) {
  const auto st = synth_stages(1.0, 1.0);
  EXPECT_THROW(ap::run_stream_pipeline<double>(cfg(4), st, {{0, 0, 2, 1}}, 4),
               std::invalid_argument);  // does not cover stage 1
  EXPECT_THROW(ap::run_stream_pipeline<double>(cfg(4), st, {{1, 1, 2, 1}, {0, 0, 2, 1}}, 4),
               std::invalid_argument);  // wrong order / coverage
  EXPECT_THROW(ap::run_stream_pipeline<double>(cfg(4), st, {{0, 1, 5, 1}}, 4),
               std::invalid_argument);  // too many procs
  EXPECT_THROW(ap::run_stream_pipeline<double>(cfg(4), st, {{0, 1, 2, 1}}, 0),
               std::invalid_argument);  // no data sets
}

TEST(StreamPipeline, SingleModuleEqualsPlainLoop) {
  std::vector<int> seen;
  const auto st = synth_stages(1.0, 1.0, &seen);
  const auto s = ap::run_stream_pipeline<double>(cfg(4), st, {{0, 1, 4, 1}}, 5);
  EXPECT_EQ(static_cast<int>(seen.size()), 5);
  // Two stages of 1.0 each, no overlap within a module: makespan >= 10.
  EXPECT_GE(s.makespan, 10.0);
}

TEST(StreamPipeline, StartEndMonotonePerDataSet) {
  const auto st = synth_stages(2.0, 2.0);
  const auto s =
      ap::run_stream_pipeline<double>(cfg(4), st, {{0, 0, 2, 1}, {1, 1, 2, 1}}, 6);
  for (int k = 0; k < 6; ++k) {
    EXPECT_LT(s.start[static_cast<std::size_t>(k)], s.end[static_cast<std::size_t>(k)]);
    if (k > 0) {
      EXPECT_LE(s.end[static_cast<std::size_t>(k - 1)], s.end[static_cast<std::size_t>(k)]);
    }
  }
}
