// Tests for the Fx do&merge parallel loop construct and the replicated
// scalar coherence assertion.
#include <gtest/gtest.h>

#include "core/fx.hpp"

using namespace fxpar;

namespace {
MachineConfig cfg(int p) {
  auto c = MachineConfig::ideal(p);
  c.stack_bytes = 256 * 1024;
  return c;
}
}  // namespace

TEST(ParallelFor, CoversEveryIterationExactlyOnce) {
  Machine m(cfg(4));
  std::vector<int> hits(37, 0);
  m.run([&](Context& ctx) {
    core::parallel_for(ctx, 0, 37, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)] += 1;
    });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  Machine m(cfg(3));
  m.run([&](Context& ctx) {
    core::parallel_for(ctx, 5, 5, [&](std::int64_t) { FAIL(); });
    core::parallel_for(ctx, 7, 3, [&](std::int64_t) { FAIL(); });
  });
}

TEST(ParallelReduce, SumsAcrossGroup) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    const auto sum = core::parallel_reduce<std::int64_t>(
        ctx, 1, 101, [](std::int64_t i) { return i; }, std::plus<std::int64_t>{}, 0);
    EXPECT_EQ(sum, 5050);
  });
}

TEST(ParallelReduce, MaxWithInit) {
  Machine m(cfg(5));
  m.run([&](Context& ctx) {
    const int best = core::parallel_reduce<int>(
        ctx, 0, 50, [](std::int64_t i) { return static_cast<int>((i * 37) % 23); },
        [](int a, int b) { return std::max(a, b); }, -1);
    EXPECT_EQ(best, 22);
  });
}

TEST(ParallelReduce, WorksInsideSubgroupScope) {
  Machine m(cfg(6));
  m.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"a", 2}, {"b", 4}});
    core::TaskRegion region(ctx, part);
    region.on("b", [&] {
      const auto sum = core::parallel_reduce<std::int64_t>(
          ctx, 0, 16, [](std::int64_t i) { return i; }, std::plus<std::int64_t>{}, 0);
      EXPECT_EQ(sum, 120);
      EXPECT_EQ(ctx.nprocs(), 4);
    });
  });
}

TEST(ParallelReduce, SingleProcessorNeedsNoCommunication) {
  Machine m(cfg(1));
  auto res = m.run([&](Context& ctx) {
    const auto sum = core::parallel_reduce<int>(
        ctx, 0, 10, [](std::int64_t i) { return static_cast<int>(i); }, std::plus<int>{}, 0);
    EXPECT_EQ(sum, 45);
  });
  EXPECT_EQ(res.messages, 0u);
}

TEST(ParallelReduce, MoreProcsThanIterations) {
  Machine m(cfg(8));
  m.run([&](Context& ctx) {
    const auto sum = core::parallel_reduce<int>(
        ctx, 0, 3, [](std::int64_t i) { return static_cast<int>(i + 1); }, std::plus<int>{},
        0);
    EXPECT_EQ(sum, 6);
  });
}

TEST(ParallelReduce, DeterministicFloatMergeOrder) {
  auto run_once = [] {
    Machine m(cfg(7));
    double out = 0.0;
    m.run([&](Context& ctx) {
      out = core::parallel_reduce<double>(
          ctx, 0, 1000, [](std::int64_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
          std::plus<double>{}, 0.0);
    });
    return out;
  };
  EXPECT_EQ(run_once(), run_once());  // bit-identical
}

TEST(ReplicatedCoherence, PassesWhenIdentical) {
  Machine m(cfg(4));
  m.run([&](Context& ctx) {
    core::Replicated<int> i(ctx, 3);
    i.increment();
    i.assert_coherent();
    SUCCEED();
  });
}

TEST(ReplicatedCoherence, DetectsDivergence) {
  Machine m(cfg(4));
  EXPECT_THROW(m.run([&](Context& ctx) {
    core::Replicated<int> i(ctx, 0);
    // Violate the model: a rank-dependent "replicated" update.
    i.update([&](int) { return ctx.phys_rank(); });
    i.assert_coherent();
  }),
               std::logic_error);
}
