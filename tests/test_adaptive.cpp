// Tests for dynamic processor reassignment (Section 6: "dynamic load
// management by reassigning processors to different tasks").
#include <gtest/gtest.h>

#include "apps/adaptive.hpp"

namespace ap = fxpar::apps;
using fxpar::MachineConfig;

namespace {
ap::AdaptiveConfig base() {
  ap::AdaptiveConfig c;
  c.total_procs = 16;
  c.batches = 6;
  c.sets_per_batch = 6;
  c.n = 1 << 16;
  // Compute-dominated stages (the transfer between them is ~35 ms/set on
  // the Paragon balance; rebalancing compute only pays when compute is the
  // larger term).
  c.stage0_flops_per_elem = 16.0;
  c.stage1_flops_per_elem = 64.0;
  return c;
}
MachineConfig mach(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 512 * 1024;
  return c;
}
}  // namespace

TEST(Adaptive, ConvergesTowardsWorkProportionalSplit) {
  auto cfg = base();  // stage work ratio 4 : 16 -> s0 should get ~1/5
  const auto res = ap::run_adaptive_pipeline(mach(cfg.total_procs), cfg);
  ASSERT_EQ(static_cast<int>(res.stage0_procs_per_batch.size()), cfg.batches);
  EXPECT_EQ(res.stage0_procs_per_batch.front(), 8);  // initial 50/50
  const int final_split = res.stage0_procs_per_batch.back();
  EXPECT_GE(final_split, 2);
  EXPECT_LE(final_split, 5);  // ~16/5 with comm noise
}

TEST(Adaptive, ThroughputImprovesAcrossBatches) {
  auto cfg = base();
  const auto res = ap::run_adaptive_pipeline(mach(cfg.total_procs), cfg);
  ASSERT_GE(res.batch_throughput.size(), 2u);
  EXPECT_GT(res.batch_throughput.back(), 1.1 * res.batch_throughput.front());
}

TEST(Adaptive, BeatsStaticMapping) {
  auto cfg = base();
  const auto adaptive = ap::run_adaptive_pipeline(mach(cfg.total_procs), cfg);
  cfg.adapt = false;
  const auto fixed = ap::run_adaptive_pipeline(mach(cfg.total_procs), cfg);
  EXPECT_LT(adaptive.makespan, fixed.makespan);
  // The static run never moves off the initial split.
  for (int p : fixed.stage0_procs_per_batch) EXPECT_EQ(p, cfg.total_procs / 2);
}

TEST(Adaptive, BalancedStagesKeepTheEvenSplit) {
  auto cfg = base();
  cfg.stage1_flops_per_elem = cfg.stage0_flops_per_elem;
  const auto res = ap::run_adaptive_pipeline(mach(cfg.total_procs), cfg);
  // Equal work: the split should stay near 50/50 throughout.
  for (int p : res.stage0_procs_per_batch) {
    EXPECT_GE(p, 6);
    EXPECT_LE(p, 10);
  }
}

TEST(Adaptive, Deterministic) {
  auto cfg = base();
  const auto a = ap::run_adaptive_pipeline(mach(cfg.total_procs), cfg);
  const auto b = ap::run_adaptive_pipeline(mach(cfg.total_procs), cfg);
  EXPECT_EQ(a.stage0_procs_per_batch, b.stage0_procs_per_batch);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Adaptive, RejectsBadConfiguration) {
  auto cfg = base();
  EXPECT_THROW(ap::run_adaptive_pipeline(mach(8), cfg), std::invalid_argument);
  cfg.total_procs = 1;
  EXPECT_THROW(ap::run_adaptive_pipeline(mach(1), cfg), std::invalid_argument);
}
