// Tests for multi-dimensional layouts over processor groups.
#include <gtest/gtest.h>

#include <array>

#include "dist/layout.hpp"

namespace ds = fxpar::dist;
namespace pg = fxpar::pgroup;

namespace {
std::array<std::int64_t, 2> idx2(std::int64_t i, std::int64_t j) { return {i, j}; }
}  // namespace

TEST(Layout, OneDimBlock) {
  ds::Layout l(pg::ProcessorGroup::identity(4), {16}, {ds::DimDist::block()});
  EXPECT_EQ(l.ndims(), 1);
  EXPECT_FALSE(l.fully_replicated());
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(l.local_size(v), 4);
    const auto runs = l.owned_runs(v, 0);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].start, v * 4);
  }
  const std::array<std::int64_t, 1> i{9};
  EXPECT_EQ(l.owner_of(i), 2);
  EXPECT_TRUE(l.owns(2, i));
  EXPECT_FALSE(l.owns(1, i));
  EXPECT_EQ(l.local_offset(2, i), 1);
}

TEST(Layout, TwoDimBlockBlockGrid) {
  // 4 procs over (8,8) with (BLOCK, BLOCK): 2x2 grid.
  ds::Layout l(pg::ProcessorGroup::identity(4), {8, 8},
               {ds::DimDist::block(), ds::DimDist::block()});
  EXPECT_EQ(l.grid().extents(), (std::vector<int>{2, 2}));
  EXPECT_EQ(l.procs_along(0), 2);
  EXPECT_EQ(l.procs_along(1), 2);
  // vrank 3 = grid (1,1): rows 4..7, cols 4..7.
  EXPECT_EQ(l.owner_of(idx2(5, 6)), 3);
  EXPECT_EQ(l.owner_of(idx2(0, 0)), 0);
  EXPECT_EQ(l.owner_of(idx2(0, 7)), 1);
  EXPECT_EQ(l.owner_of(idx2(7, 0)), 2);
  EXPECT_EQ(l.local_extents(3), (std::vector<std::int64_t>{4, 4}));
  EXPECT_EQ(l.local_offset(3, idx2(5, 6)), 1 * 4 + 2);
}

TEST(Layout, RowsBlockColsCollapsed) {
  // (BLOCK, *) over 4 procs: whole rows per processor.
  ds::Layout l(pg::ProcessorGroup::identity(4), {8, 5},
               {ds::DimDist::block(), ds::DimDist::collapsed()});
  EXPECT_EQ(l.grid().extents(), (std::vector<int>{4}));
  EXPECT_EQ(l.procs_along(0), 4);
  EXPECT_EQ(l.procs_along(1), 1);
  EXPECT_EQ(l.local_extents(1), (std::vector<std::int64_t>{2, 5}));
  EXPECT_EQ(l.owner_of(idx2(3, 4)), 1);
  EXPECT_EQ(l.local_offset(1, idx2(3, 4)), 1 * 5 + 4);
}

TEST(Layout, FullyReplicated) {
  ds::Layout l(pg::ProcessorGroup::identity(3), {4, 4},
               {ds::DimDist::collapsed(), ds::DimDist::collapsed()});
  EXPECT_TRUE(l.fully_replicated());
  for (int v = 0; v < 3; ++v) {
    EXPECT_TRUE(l.owns(v, idx2(2, 2)));
    EXPECT_EQ(l.local_size(v), 16);
  }
  EXPECT_EQ(l.owner_of(idx2(2, 2)), 0);  // canonical
}

TEST(Layout, ExplicitGridExtents) {
  ds::Layout l(pg::ProcessorGroup::identity(6), {6, 6},
               {ds::DimDist::block(), ds::DimDist::block()}, {2, 3});
  EXPECT_EQ(l.procs_along(0), 2);
  EXPECT_EQ(l.procs_along(1), 3);
  EXPECT_THROW(ds::Layout(pg::ProcessorGroup::identity(6), {6, 6},
                          {ds::DimDist::block(), ds::DimDist::block()}, {2, 2}),
               std::invalid_argument);
}

TEST(Layout, SubgroupRelativeDistribution) {
  // Distribution is relative to the owning subgroup, not the machine.
  const pg::ProcessorGroup sub({4, 5, 6, 7});
  ds::Layout l(sub, {8}, {ds::DimDist::block()});
  EXPECT_EQ(l.owner_of(std::array<std::int64_t, 1>{0}), 0);  // virtual rank 0 == phys 4
  EXPECT_EQ(l.group().physical(l.owner_of(std::array<std::int64_t, 1>{7})), 7);
}

TEST(Layout, LocalToGlobalRoundTrip) {
  ds::Layout l(pg::ProcessorGroup::identity(4), {6, 10},
               {ds::DimDist::cyclic(), ds::DimDist::block()});
  for (int v = 0; v < 4; ++v) {
    const auto ext = l.local_extents(v);
    for (std::int64_t a = 0; a < ext[0]; ++a) {
      for (std::int64_t b = 0; b < ext[1]; ++b) {
        const auto g = l.local_to_global(v, std::array<std::int64_t, 2>{a, b});
        EXPECT_TRUE(l.owns(v, g));
        EXPECT_EQ(l.local_offset(v, g), a * ext[1] + b);
        EXPECT_EQ(l.owner_of(g), v);
      }
    }
  }
}

TEST(Layout, TotalElementsPartitioned) {
  // Sum of local sizes equals the global element count when distributed.
  ds::Layout l(pg::ProcessorGroup::identity(5), {7, 9},
               {ds::DimDist::block(), ds::DimDist::cyclic()});
  std::int64_t total = 0;
  for (int v = 0; v < 5; ++v) total += l.local_size(v);
  EXPECT_EQ(total, l.total_elements());
}

TEST(Layout, Errors) {
  EXPECT_THROW(ds::Layout(pg::ProcessorGroup::identity(2), {}, {}), std::invalid_argument);
  EXPECT_THROW(ds::Layout(pg::ProcessorGroup::identity(2), {4}, {}), std::invalid_argument);
  EXPECT_THROW(ds::Layout(pg::ProcessorGroup::identity(2), {0}, {ds::DimDist::block()}),
               std::invalid_argument);
  ds::Layout l(pg::ProcessorGroup::identity(2), {4}, {ds::DimDist::block()});
  EXPECT_THROW(l.owner_of(idx2(0, 0)), std::invalid_argument);
  EXPECT_THROW(l.owned_runs(0, 1), std::out_of_range);
  EXPECT_THROW(l.grid_coord(2, 0), std::out_of_range);
}

TEST(Layout, EqualityIsStructural) {
  const auto g = pg::ProcessorGroup::identity(4);
  ds::Layout a(g, {8}, {ds::DimDist::block()});
  ds::Layout b(g, {8}, {ds::DimDist::block()});
  ds::Layout c(g, {8}, {ds::DimDist::cyclic()});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}
