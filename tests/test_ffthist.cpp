// End-to-end tests of the FFT-Hist application under different task/data
// parallel mappings: pure data parallel, 3-stage pipeline (Figure 2),
// replicated (Figure 3), and hybrid — all must produce the sequential
// reference histograms, and their timing must show the expected
// pipelining/replication behaviour.
#include <gtest/gtest.h>

#include "apps/ffthist.hpp"

namespace ap = fxpar::apps;
namespace sched = fxpar::sched;
using fxpar::MachineConfig;

namespace {

MachineConfig paragon(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

ap::FftHistConfig small_cfg() {
  ap::FftHistConfig c;
  c.n = 16;
  c.bins = 8;
  c.num_sets = 6;
  return c;
}

void expect_all_reference(const ap::FftHistConfig& cfg,
                          const std::vector<std::vector<std::int64_t>>& sink) {
  ASSERT_EQ(static_cast<int>(sink.size()), cfg.num_sets);
  for (int k = 0; k < cfg.num_sets; ++k) {
    EXPECT_EQ(sink[static_cast<std::size_t>(k)], ap::ffthist_reference(cfg, k))
        << "data set " << k;
  }
}

}  // namespace

TEST(FftHist, ReferenceHistogramCountsAllElements) {
  const auto cfg = small_cfg();
  const auto h = ap::ffthist_reference(cfg, 0);
  std::int64_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, cfg.n * cfg.n);
}

TEST(FftHist, DataParallelMatchesReference) {
  const auto cfg = small_cfg();
  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);
  // One module, all stages, 4 procs.
  const auto stats = ap::run_stream_pipeline<ap::Complex>(
      paragon(4), stages, {{0, 2, 4, 1}}, cfg.num_sets);
  expect_all_reference(cfg, sink);
  EXPECT_GT(stats.makespan, 0.0);
}

TEST(FftHist, ThreeStagePipelineMatchesReference) {
  const auto cfg = small_cfg();
  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);
  // Figure 2: G1(2), G2(2), G3(2).
  const auto stats = ap::run_stream_pipeline<ap::Complex>(
      paragon(6), stages, {{0, 0, 2, 1}, {1, 1, 2, 1}, {2, 2, 2, 1}}, cfg.num_sets);
  expect_all_reference(cfg, sink);
  EXPECT_GT(stats.throughput(), 0.0);
}

TEST(FftHist, ReplicatedMatchesReference) {
  const auto cfg = small_cfg();
  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);
  // Figure 3: two instances of the whole computation.
  ap::run_stream_pipeline<ap::Complex>(paragon(8), stages, {{0, 2, 4, 2}}, cfg.num_sets);
  expect_all_reference(cfg, sink);
}

TEST(FftHist, HybridPipelineWithReplicationMatchesReference) {
  const auto cfg = small_cfg();
  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);
  // Two replicated FFT modules feeding one hist module.
  ap::run_stream_pipeline<ap::Complex>(paragon(10), stages,
                                       {{0, 1, 4, 2}, {2, 2, 2, 1}}, cfg.num_sets);
  expect_all_reference(cfg, sink);
}

TEST(FftHist, SingleProcessorModulesWork) {
  const auto cfg = small_cfg();
  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);
  ap::run_stream_pipeline<ap::Complex>(paragon(3), stages,
                                       {{0, 0, 1, 1}, {1, 1, 1, 1}, {2, 2, 1, 1}},
                                       cfg.num_sets);
  expect_all_reference(cfg, sink);
}

TEST(FftHist, PipeliningOverlapsStages) {
  // Isolate the overlap effect: three 2-processor stage modules pipelined
  // against the same three stages serialized on one 2-processor module.
  // Overlap must deliver well over the serial rate (ideally ~3x).
  auto cfg = small_cfg();
  cfg.n = 128;
  cfg.num_sets = 10;
  const auto stages = ap::ffthist_stages(cfg);
  const auto serial = ap::run_stream_pipeline<ap::Complex>(paragon(6), stages, {{0, 2, 2, 1}},
                                                           cfg.num_sets);
  const auto pipe = ap::run_stream_pipeline<ap::Complex>(
      paragon(6), stages, {{0, 0, 2, 1}, {1, 1, 2, 1}, {2, 2, 2, 1}}, cfg.num_sets);
  EXPECT_GT(pipe.steady_throughput(), 1.5 * serial.steady_throughput());
  // Pipelining adds handoffs to the critical path: per-set latency rises.
  EXPECT_GT(pipe.avg_latency(), serial.avg_latency());
}

TEST(FftHist, ReplicationScalesThroughputForSmallSets) {
  auto cfg = small_cfg();
  cfg.num_sets = 12;
  const auto stages = ap::ffthist_stages(cfg);
  const auto one = ap::run_stream_pipeline<ap::Complex>(paragon(8), stages, {{0, 2, 4, 1}},
                                                        cfg.num_sets);
  const auto two = ap::run_stream_pipeline<ap::Complex>(paragon(8), stages, {{0, 2, 4, 2}},
                                                        cfg.num_sets);
  EXPECT_GT(two.steady_throughput(), 1.4 * one.steady_throughput());
  EXPECT_NEAR(two.avg_latency(), one.avg_latency(), one.avg_latency());  // same order
}

TEST(FftHist, MappingValidationRejectsBadModules) {
  const auto cfg = small_cfg();
  const auto stages = ap::ffthist_stages(cfg);
  EXPECT_THROW(ap::run_stream_pipeline<ap::Complex>(paragon(4), stages, {{0, 1, 2, 1}}, 2),
               std::invalid_argument);  // does not cover stage 2
  EXPECT_THROW(ap::run_stream_pipeline<ap::Complex>(paragon(4), stages, {{0, 2, 8, 1}}, 2),
               std::invalid_argument);  // too many procs
  EXPECT_THROW(ap::run_stream_pipeline<ap::Complex>(paragon(4), stages, {}, 2),
               std::invalid_argument);
}

TEST(FftHist, ModelRanksMappingsLikeTheMachine) {
  // The analytic model must agree with the simulator about which of two
  // mappings has higher steady-state throughput.
  auto cfg = small_cfg();
  cfg.n = 32;
  cfg.num_sets = 10;
  const auto stages = ap::ffthist_stages(cfg);
  const auto mcfg = paragon(8);
  const auto model = ap::ffthist_model(mcfg, cfg);

  sched::PipelineMapping a;
  a.modules = {{0, 2, 8, 1}};
  sched::PipelineMapping b;
  b.modules = {{0, 2, 4, 2}};
  fxpar::sched::evaluate(model, a);
  fxpar::sched::evaluate(model, b);

  const auto sa = ap::run_stream_pipeline<ap::Complex>(mcfg, stages, a.modules, cfg.num_sets);
  const auto sb = ap::run_stream_pipeline<ap::Complex>(mcfg, stages, b.modules, cfg.num_sets);
  EXPECT_EQ(a.throughput > b.throughput, sa.steady_throughput() > sb.steady_throughput());
}
