// Minimal recursive-descent JSON validator shared by the observability
// tests (chrome trace export, metrics exposition, profiler output):
// accepts exactly the RFC 8259 value grammar, rejects trailing garbage.
// Bare inf/nan tokens — the classic printf-JSON bug — fail number().
#pragma once

#include <cctype>
#include <string>

namespace fxtest {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        pos_ += 2;
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control character
      } else {
        ++pos_;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace fxtest
